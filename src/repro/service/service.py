"""The query service: composition root, admission control, telemetry.

:class:`QueryService` wires the registry, result cache, planner and
micro-batcher into one long-lived object:

* ``submit`` — validate + normalize the request, try the cache, apply
  admission control (bounded queue *and* a cap on estimated in-flight
  walks), and enqueue; returns a :class:`concurrent.futures.Future`.
* the dispatch thread (inside :class:`~repro.service.batcher.MicroBatcher`)
  calls back into ``_execute_batch``: plans are built per request (push
  phases run here), the walk tasks of all unpinned plans are fused per
  graph through :func:`repro.engine.multi.execute_plans`, pinned plans run
  unfused on their private generators, and each future is resolved with a
  :class:`QueryResponse`.
* :class:`Telemetry` tallies per-request latency, cache hit rate, batch
  occupancy and walk throughput; ``stats()`` returns the JSON the ``/stats``
  endpoint and the load harness consume.

:class:`ServiceClient` is the in-process client: the same request/response
surface the HTTP frontend exposes, minus the socket — tests and the
benchmark load generator drive the service through it.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass

from repro import obs
from repro.engine import Backend, get_backend
from repro.engine.multi import execute_plans, run_walk_tasks
from repro.exceptions import (
    QueryTimeoutError,
    ReproError,
    ServiceExecutionError,
    ServiceOverloadedError,
)
from repro.hkpr.result import HKPRResult
from repro.obs.metrics import MetricFamily, MetricsRegistry, Sample, use_registry
from repro.obs.trace import QueryTrace, TraceRecorder
from repro.service.batcher import (
    DEFAULT_BATCH_WAIT_SECONDS,
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_PENDING,
    MicroBatcher,
)
from repro.service.cache import ResultCache
from repro.service.planner import (
    DEFAULT_TOP_K,
    QueryRequest,
    build_plan,
    estimate_walks,
    normalize_request,
    walk_estimate_is_tight,
)
from repro.service.registry import GraphEntry, GraphRegistry
from repro.utils.deadline import Deadline
from repro.utils.rng import RandomState, ensure_rng

#: Default cap on the estimated walks admitted but not yet completed.
DEFAULT_MAX_INFLIGHT_WALKS = 50_000_000

#: Default per-query wall-clock budget (ms) when a request does not carry
#: its own ``timeout_ms``.  ``None`` disables the service-level default.
DEFAULT_QUERY_TIMEOUT_MS = 60_000.0


@dataclass
class QueryResponse:
    """One answered query: the estimator result plus serving metadata."""

    request: QueryRequest
    result: HKPRResult
    cached: bool
    latency_seconds: float
    batch_size: int
    entry: GraphEntry | None = None

    def to_dict(self, entry: GraphEntry | None = None) -> dict:
        """The JSON envelope served over HTTP (top-k ranking included).

        Uses the graph entry resolved at admission (carried on the
        response) by default, so frontends need not — and should not —
        re-resolve the graph name afterwards: a concurrent unregister or
        re-register would raise or rank against a different graph.
        """
        entry = entry if entry is not None else self.entry
        if entry is None:
            raise ValueError("QueryResponse carries no graph entry")
        graph = entry.graph
        top = [
            [node, self.result.value(node, graph)]
            for node in self.result.ranking(graph)[: self.request.top_k]
        ]
        return {
            "graph": self.request.graph,
            "method": self.request.method,
            "seed_node": self.request.seed_node,
            "params": dict(self.request.params),
            "top": top,
            "support_size": self.result.support_size(),
            "cached": self.cached,
            "early_exit": self.result.early_exit,
            "latency_ms": round(self.latency_seconds * 1000.0, 3),
            "batch_size": self.batch_size,
            "counters": self.result.counters.as_dict(),
        }


class Telemetry:
    """Thread-safe serving metrics (latency, occupancy, walk throughput).

    Request/latency counting lives in labeled metrics-registry series
    (``queries_total{method,graph,outcome}`` and the
    ``query_latency_seconds`` histogram) and :meth:`snapshot` is a
    backward-compatible *view* over them: the scalar totals ``/stats``
    always reported are derived by summing label children, so the two
    surfaces can never disagree.  Percentiles and the windowed request rate
    come from small bounded deques the exposition format cannot express.
    """

    #: Arrival history horizon for the windowed request rate (seconds).
    RATE_WINDOW_SECONDS = 60.0

    def __init__(
        self,
        *,
        latency_window: int = 2048,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._queries = self.registry.counter(
            "queries_total",
            "Queries by method, graph and terminal outcome "
            "(ok|cached|error|timeout|rejected).",
            ("method", "graph", "outcome"),
        )
        self._latency = self.registry.histogram(
            "query_latency_seconds",
            "End-to-end query latency, admission to response.",
            ("method", "graph", "outcome"),
        )
        self._walks = 0
        self._batches = 0
        self._batched_requests = 0
        self._max_occupancy = 0
        self._batch_seconds = 0.0
        self._latencies: deque[float] = deque(maxlen=latency_window)
        # Arrival timestamps for the windowed rate; bounded so a burst
        # cannot grow it without limit (at the cap the windowed rate
        # saturates, which is the honest reading anyway).
        self._arrivals: deque[float] = deque(maxlen=65536)

    def record_response(
        self,
        latency_seconds: float,
        *,
        cached: bool,
        method: str = "unknown",
        graph: str = "unknown",
    ) -> None:
        outcome = "cached" if cached else "ok"
        self._queries.labels(method=method, graph=graph, outcome=outcome).inc()
        self._latency.labels(
            method=method, graph=graph, outcome=outcome
        ).observe(latency_seconds)
        with self._lock:
            self._latencies.append(latency_seconds)
            self._arrivals.append(time.monotonic())

    def record_rejection(
        self, *, method: str = "unknown", graph: str = "unknown"
    ) -> None:
        self._queries.labels(
            method=method, graph=graph, outcome="rejected"
        ).inc()

    def record_error(
        self, *, method: str = "unknown", graph: str = "unknown"
    ) -> None:
        self._queries.labels(method=method, graph=graph, outcome="error").inc()

    def record_timeout(
        self,
        *,
        method: str = "unknown",
        graph: str = "unknown",
        latency_seconds: float | None = None,
    ) -> None:
        """A query tripped its deadline (counted apart from errors)."""
        self._queries.labels(
            method=method, graph=graph, outcome="timeout"
        ).inc()
        if latency_seconds is not None:
            self._latency.labels(
                method=method, graph=graph, outcome="timeout"
            ).observe(latency_seconds)

    def record_batch(self, occupancy: int, walks: int, seconds: float) -> None:
        with self._lock:
            self._batches += 1
            self._batched_requests += occupancy
            self._max_occupancy = max(self._max_occupancy, occupancy)
            self._walks += walks
            self._batch_seconds += seconds

    def snapshot(self) -> dict:
        """JSON-able metrics summary (the legacy ``/stats`` scalar view)."""
        responses = int(self._queries.sum_matching(outcome="ok"))
        cache_hits = int(self._queries.sum_matching(outcome="cached"))
        rejected = int(self._queries.sum_matching(outcome="rejected"))
        errors = int(self._queries.sum_matching(outcome="error"))
        timeouts = int(self._queries.sum_matching(outcome="timeout"))
        requests = responses + cache_hits
        with self._lock:
            now = time.monotonic()
            uptime = max(now - self._started, 1e-9)
            horizon = now - self.RATE_WINDOW_SECONDS
            while self._arrivals and self._arrivals[0] < horizon:
                self._arrivals.popleft()
            window = min(uptime, self.RATE_WINDOW_SECONDS)
            recent = len(self._arrivals)
            latencies = sorted(self._latencies)
            def _pct(p: float) -> float:
                if not latencies:
                    return 0.0
                index = min(int(p * len(latencies)), len(latencies) - 1)
                return latencies[index] * 1000.0
            return {
                "uptime_seconds": round(uptime, 3),
                "requests_total": requests,
                "requests_per_second": round(requests / uptime, 3),
                "requests_per_second_60s": round(recent / window, 3),
                "cache_hits_total": cache_hits,
                "cache_hit_rate": round(cache_hits / requests, 4) if requests else 0.0,
                "rejected_total": rejected,
                "errors_total": errors,
                "timeouts_total": timeouts,
                "latency_ms": {
                    "mean": round(
                        sum(latencies) / len(latencies) * 1000.0, 3
                    ) if latencies else 0.0,
                    "p50": round(_pct(0.50), 3),
                    "p95": round(_pct(0.95), 3),
                    "p99": round(_pct(0.99), 3),
                    "max": round(latencies[-1] * 1000.0, 3) if latencies else 0.0,
                },
                "batches": {
                    "count": self._batches,
                    "mean_occupancy": round(
                        self._batched_requests / self._batches, 3
                    ) if self._batches else 0.0,
                    "max_occupancy": self._max_occupancy,
                },
                "walks": {
                    "total": self._walks,
                    "per_second_overall": round(self._walks / uptime, 1),
                    "per_second_busy": round(
                        self._walks / self._batch_seconds, 1
                    ) if self._batch_seconds > 0 else 0.0,
                },
            }


@dataclass
class _Pending:
    """One admitted request travelling through the batch queue."""

    request: QueryRequest
    entry: GraphEntry
    future: Future
    estimated_walks: int
    submitted_at: float
    deadline: Deadline | None = None
    trace: QueryTrace | None = None


class QueryService:
    """A long-lived, concurrent HKPR/PPR query server (in-process core)."""

    def __init__(
        self,
        registry: GraphRegistry | None = None,
        *,
        backend: str | Backend | None = None,
        max_batch: int = DEFAULT_MAX_BATCH,
        batch_wait_seconds: float = DEFAULT_BATCH_WAIT_SECONDS,
        max_pending: int = DEFAULT_MAX_PENDING,
        max_inflight_walks: int = DEFAULT_MAX_INFLIGHT_WALKS,
        cache_entries: int = 1024,
        cache_ttl_seconds: float | None = None,
        default_timeout_ms: float | None = None,
        rng: RandomState = None,
        metrics_registry: MetricsRegistry | None = None,
        trace_capacity: int = obs.DEFAULT_RING_CAPACITY,
        slow_query_ms: float | None = None,
        slow_query_log: str | None = None,
    ) -> None:
        self.registry = registry if registry is not None else GraphRegistry()
        #: Deadline applied to requests that carry no ``timeout_ms`` of
        #: their own; ``None`` leaves such requests unbounded.  The CLI
        #: ``serve`` command defaults this to ``DEFAULT_QUERY_TIMEOUT_MS``.
        self.default_timeout_ms = default_timeout_ms
        self._backend = get_backend(backend)
        self._rng = ensure_rng(rng)
        #: Per-service metrics registry (so two services in one process do
        #: not mix series); rendered by ``GET /metrics``.  Pass a shared
        #: registry to aggregate several services into one exposition.
        self.metrics = (
            metrics_registry if metrics_registry is not None else MetricsRegistry()
        )
        self.telemetry = Telemetry(registry=self.metrics)
        #: Recent-trace ring + slow-query JSONL sink (``GET /trace/recent``).
        self.tracer = TraceRecorder(
            capacity=trace_capacity,
            slow_query_ms=slow_query_ms,
            slow_query_log=slow_query_log,
        )
        self.metrics.register_collector(self._collect_service_metrics)
        self.cache: ResultCache | None = (
            # Cache keys start with the graph name (see
            # QueryRequest.cache_key), so grouping by key[0] yields the
            # per-graph hit/miss/eviction breakdown /stats reports.
            ResultCache(
                cache_entries,
                ttl_seconds=cache_ttl_seconds,
                group_of=lambda key: str(key[0]),
            )
            if cache_entries > 0
            else None
        )
        if self.cache is not None:
            # One eviction path for "this graph changed": both unregister
            # (GraphRegistry.remove) and edge mutations (GraphRegistry.mutate)
            # fire the invalidation hooks, which drop the graph's cache group.
            self.registry.add_invalidation_hook(self.cache.invalidate_group)
        self._max_inflight_walks = max_inflight_walks
        self._inflight_walks = 0
        self._inflight_lock = threading.Lock()
        self._batcher = MicroBatcher(
            self._execute_batch,
            max_batch=max_batch,
            batch_wait_seconds=batch_wait_seconds,
            max_pending=max_pending,
            on_drop=self._drop_pending,
        )

    # -------------------------------------------------------------- #
    # Lifecycle
    # -------------------------------------------------------------- #
    def start(self) -> "QueryService":
        """Start the dispatch thread (idempotent); returns ``self``."""
        self._batcher.start()
        return self

    def stop(self) -> None:
        """Stop dispatching; queued requests fail with :class:`ServiceExecutionError`."""
        self._batcher.stop()
        self.tracer.close()

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def backend(self) -> Backend:
        """The walk-execution backend every batch runs on."""
        return self._backend

    # -------------------------------------------------------------- #
    # Request path
    # -------------------------------------------------------------- #
    def submit(
        self,
        graph: str,
        method: str,
        seed_node,
        params: dict | None = None,
        *,
        rng=None,
        top_k=DEFAULT_TOP_K,
        timeout_ms=None,
    ) -> "Future[QueryResponse]":
        """Admit one query; returns a future resolving to :class:`QueryResponse`.

        ``timeout_ms`` (or, absent that, the service's ``default_timeout_ms``)
        starts the query's cooperative deadline *now*, so queue wait counts
        against the budget; the future fails with
        :class:`~repro.exceptions.QueryTimeoutError` when the deadline trips.

        Raises :class:`ServiceError` for invalid requests and
        :class:`ServiceOverloadedError` when admission control rejects
        (full queue or the in-flight walk cap).
        """
        entry = self.registry.get(graph)
        request = normalize_request(
            graph, method, seed_node, params, rng=rng, top_k=top_k,
            timeout_ms=timeout_ms, entry=entry,
        )
        submitted_at = time.perf_counter()

        if self.cache is not None and request.cache_eligible():
            hit = self.cache.get(request.cache_key())
            if hit is not None:
                response = QueryResponse(
                    request=request,
                    result=hit,
                    cached=True,
                    latency_seconds=time.perf_counter() - submitted_at,
                    batch_size=0,
                    entry=entry,
                )
                self.telemetry.record_response(
                    response.latency_seconds, cached=True,
                    method=request.method, graph=graph,
                )
                future: "Future[QueryResponse]" = Future()
                future.set_result(response)
                return future

        estimated = max(0, estimate_walks(entry, request))
        if estimated > self._max_inflight_walks and walk_estimate_is_tight(request):
            # A query that would really run more walks than the whole
            # budget can never fit, idle server or not — without this
            # check the single-request escape hatch below would admit it
            # and the walk phase would wedge the dispatch thread (e.g. a
            # default cluster-hkpr query implies ~1/eps^3 walks with
            # eps ~ p_f).  Methods whose estimate is only a loose upper
            # bound (tea/tea+/fora: the push phase usually collapses it)
            # keep the escape hatch.
            self.telemetry.record_rejection(method=request.method, graph=graph)
            raise ServiceOverloadedError(
                f"query's estimated walks ({estimated}) exceed the in-flight "
                f"walk budget ({self._max_inflight_walks}); tighten its "
                f"parameters (e.g. num_walks/max_walks/eps)"
            )
        with self._inflight_lock:
            if (
                self._inflight_walks + estimated > self._max_inflight_walks
                and self._inflight_walks > 0
            ):
                self.telemetry.record_rejection(
                    method=request.method, graph=graph
                )
                raise ServiceOverloadedError(
                    f"in-flight walk budget exhausted "
                    f"({self._inflight_walks} + {estimated} > "
                    f"{self._max_inflight_walks})"
                )
            self._inflight_walks += estimated

        effective_timeout = (
            request.timeout_ms
            if request.timeout_ms is not None
            else self.default_timeout_ms
        )
        deadline = (
            Deadline(effective_timeout) if effective_timeout is not None else None
        )
        trace = (
            QueryTrace(
                graph=graph, method=request.method, seed_node=request.seed_node
            )
            if obs.enabled()
            else None
        )
        pending = _Pending(
            request, entry, Future(), estimated, submitted_at, deadline, trace
        )
        try:
            self._batcher.submit(pending)
        except ServiceOverloadedError:
            self._release_walks(estimated)
            self.telemetry.record_rejection(method=request.method, graph=graph)
            raise
        return pending.future

    def query(self, *args, timeout: float | None = 60.0, **kwargs) -> QueryResponse:
        """Synchronous :meth:`submit` (blocks for the response)."""
        return self.submit(*args, **kwargs).result(timeout=timeout)

    # -------------------------------------------------------------- #
    # Mutation path
    # -------------------------------------------------------------- #
    def mutate_graph(self, name: str, *, add=(), remove=()) -> dict:
        """Apply an edge mutation to a served graph; returns the summary.

        Thin wrapper over :meth:`GraphRegistry.mutate` that runs with this
        service's metrics registry active, so the ``index_stale_total``
        counter emitted when a walk index is detached lands in the same
        exposition as the serving metrics.  Cache invalidation happens via
        the registry's hooks (wired in ``__init__``); in-flight queries
        keep the entry/graph snapshot they resolved at admission.
        """
        with use_registry(self.metrics):
            return self.registry.mutate(name, add=add, remove=remove)

    def remove_graph(self, name: str) -> None:
        """Unregister a graph, evicting its cached results via the hooks."""
        with use_registry(self.metrics):
            self.registry.remove(name)

    def stats(self) -> dict:
        """Telemetry + cache + queue + index metrics (the ``/stats`` payload)."""
        snapshot = self.telemetry.snapshot()
        if self.cache is not None:
            cache_stats = self.cache.stats()
            # The cache groups by graph name; present that as "per_graph".
            cache_stats["per_graph"] = cache_stats.pop("per_group", {})
            snapshot["cache"] = cache_stats
        else:
            snapshot["cache"] = None
        index_graphs = {}
        for name in self.registry.names():
            index = self.registry.get(name).index
            if index is not None:
                index_graphs[name] = index.stats()
        if index_graphs:
            hits = sum(info["hits"] for info in index_graphs.values())
            misses = sum(info["misses"] for info in index_graphs.values())
            snapshot["index"] = {
                "graphs": index_graphs,
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
                # Walks the service did not sample online because a stored
                # sketch covered them — the headline "walks saved" number.
                "walks_from_index": sum(
                    info["walks_from_index"] for info in index_graphs.values()
                ),
            }
        else:
            snapshot["index"] = None
        snapshot["queue"] = {
            "pending": self._batcher.pending(),
            "max_batch": self._batcher.max_batch,
            "batcher": self._batcher.stats(),
        }
        with self._inflight_lock:
            snapshot["inflight_walks"] = self._inflight_walks
        snapshot["backend"] = self._backend.name
        snapshot["graphs"] = self.registry.names()
        snapshot["graph_storage"] = {
            info["name"]: {
                "storage": info["storage"],
                "load_seconds": info["load_seconds"],
                "csr_bytes": info["csr_bytes"],
                "epoch": info["epoch"],
                "delta_edges": info["delta_edges"],
                "stale_indexes": info["stale_indexes"],
            }
            for info in self.registry.describe()
        }
        snapshot["observability"] = {
            "enabled": obs.enabled(),
            "traces": self.tracer.stats(),
        }
        return snapshot

    def render_metrics(self) -> str:
        """The Prometheus text exposition (the ``GET /metrics`` body)."""
        return self.metrics.render()

    def recent_traces(self, n: int | None = None) -> list[dict]:
        """Most recent finished query traces, newest first (``/trace/recent``)."""
        return self.tracer.recent(n)

    def _collect_service_metrics(self) -> list[MetricFamily]:
        """Scrape-time collector: service-level state the hot path already
        tracks elsewhere (no double counting on the request path)."""
        tele = self.telemetry
        with tele._lock:
            uptime = time.monotonic() - tele._started
            batches = tele._batches
            walks = tele._walks
        with self._inflight_lock:
            inflight = self._inflight_walks
        families = [
            MetricFamily(
                "service_uptime_seconds", "gauge",
                "Seconds since the service started.",
                [Sample("service_uptime_seconds", {}, uptime)],
            ),
            MetricFamily(
                "service_queue_pending", "gauge",
                "Admitted requests waiting for dispatch.",
                [Sample("service_queue_pending", {}, float(self._batcher.pending()))],
            ),
            MetricFamily(
                "service_inflight_walks", "gauge",
                "Estimated walks admitted but not yet completed.",
                [Sample("service_inflight_walks", {}, float(inflight))],
            ),
            MetricFamily(
                "service_batches_total", "counter",
                "Dispatch cycles executed.",
                [Sample("service_batches_total", {}, float(batches))],
            ),
            MetricFamily(
                "service_walks_total", "counter",
                "Random walks executed by dispatched batches.",
                [Sample("service_walks_total", {}, float(walks))],
            ),
        ]
        if self.cache is not None:
            cache_stats = self.cache.stats()
            per_graph = cache_stats.get("per_group", {})
            for metric, help_text in (
                ("hits", "Result-cache hits."),
                ("misses", "Result-cache misses."),
                ("evictions", "Result-cache capacity evictions."),
            ):
                family = MetricFamily(
                    f"result_cache_{metric}_total", "counter", help_text
                )
                if per_graph:
                    for graph_name, counters in sorted(per_graph.items()):
                        family.samples.append(
                            Sample(
                                family.name,
                                {"graph": graph_name},
                                float(counters.get(metric, 0)),
                            )
                        )
                else:
                    family.samples.append(
                        Sample(family.name, {}, float(cache_stats.get(metric, 0)))
                    )
                families.append(family)
            families.append(
                MetricFamily(
                    "result_cache_entries", "gauge",
                    "Entries currently held by the result cache.",
                    [Sample(
                        "result_cache_entries", {},
                        float(cache_stats.get("entries", 0)),
                    )],
                )
            )
        nodes_family = MetricFamily(
            "graph_nodes", "gauge", "Nodes per registered graph."
        )
        edges_family = MetricFamily(
            "graph_edges", "gauge", "Edges per registered graph."
        )
        for name in self.registry.names():
            try:
                graph = self.registry.get(name).graph
            except Exception:  # noqa: BLE001 - racing an unregister
                continue
            nodes_family.samples.append(
                Sample("graph_nodes", {"graph": name}, float(graph.num_nodes))
            )
            edges_family.samples.append(
                Sample("graph_edges", {"graph": name}, float(graph.num_edges))
            )
        families.extend([nodes_family, edges_family])
        return families

    # -------------------------------------------------------------- #
    # Dispatch side (runs on the batcher thread)
    # -------------------------------------------------------------- #
    def _release_walks(self, count: int) -> None:
        with self._inflight_lock:
            self._inflight_walks = max(0, self._inflight_walks - count)

    def _drop_pending(self, pending: _Pending) -> None:
        self._release_walks(pending.estimated_walks)
        try:
            pending.future.set_exception(
                ServiceExecutionError(
                    "service stopped before the request was dispatched"
                )
            )
        except InvalidStateError:  # client cancelled while queued
            pass

    def _finish_trace(
        self, pending: _Pending, outcome: str, latency_ms: float | None = None
    ) -> None:
        if pending.trace is None:
            return
        self.tracer.record(pending.trace.finish(outcome, latency_ms))
        pending.trace = None  # a pending terminates exactly once

    def _resolve(
        self, pending: _Pending, result: HKPRResult, batch_size: int
    ) -> None:
        response = QueryResponse(
            request=pending.request,
            result=result,
            cached=False,
            latency_seconds=time.perf_counter() - pending.submitted_at,
            batch_size=batch_size,
            entry=pending.entry,
        )
        if self.cache is not None and pending.request.cache_eligible():
            self.cache.put(pending.request.cache_key(), result)
        self.telemetry.record_response(
            response.latency_seconds, cached=False,
            method=pending.request.method, graph=pending.request.graph,
        )
        self._finish_trace(pending, "ok", response.latency_seconds * 1000.0)
        try:
            pending.future.set_result(response)
        except InvalidStateError:  # client cancelled mid-flight; result dropped
            pass

    def _fail(self, pending: _Pending, error: Exception) -> None:
        self.telemetry.record_error(
            method=pending.request.method, graph=pending.request.graph
        )
        self._finish_trace(pending, "error")
        try:
            pending.future.set_exception(error)
        except InvalidStateError:  # client cancelled mid-flight
            pass

    def _fail_timeout(self, pending: _Pending, error: QueryTimeoutError) -> None:
        """Deadline trips are accounted apart from errors (see ``/stats``)."""
        elapsed_ms = getattr(error, "elapsed_ms", None)
        self.telemetry.record_timeout(
            method=pending.request.method,
            graph=pending.request.graph,
            latency_seconds=(
                elapsed_ms / 1000.0 if elapsed_ms is not None else None
            ),
        )
        if pending.trace is not None:
            now = time.perf_counter()
            pending.trace.add_span(
                "deadline_hit", now, now,
                timeout_ms=getattr(error, "timeout_ms", None),
                elapsed_ms=elapsed_ms,
            )
        self._finish_trace(pending, "timeout", elapsed_ms)
        try:
            pending.future.set_exception(error)
        except InvalidStateError:  # client cancelled mid-flight
            pass

    def _execute_batch(self, batch: list[_Pending]) -> None:
        """Plan every request, fuse unpinned walk phases per graph, finalize.

        The whole cycle runs with this service's metrics registry active,
        so kernel series recorded deep inside the engine land here rather
        than in the process-wide registry.
        """
        with use_registry(self.metrics):
            self._execute_batch_inner(batch)

    def _execute_batch_inner(self, batch: list[_Pending]) -> None:
        started = time.perf_counter()
        walks_executed = 0
        # Keyed by entry identity, not graph name: re-registering a name
        # mid-flight must not fuse plans built against different graphs.
        fused: dict[int, list[tuple[_Pending, object]]] = {}
        pinned: list[tuple[_Pending, object, object]] = []
        for pending in batch:
            # Claim the future before doing any work: a client that already
            # cancelled gets skipped, and a RUNNING future can no longer be
            # cancelled out from under _resolve/_fail.
            if not pending.future.set_running_or_notify_cancel():
                self._release_walks(pending.estimated_walks)
                continue
            trace = pending.trace
            if trace is not None:
                # From trace creation (admission) to now: the queue wait.
                trace.add_span(
                    "queue_wait", trace.origin, time.perf_counter(),
                    batch_size=len(batch),
                )
            try:
                if pending.deadline is not None:
                    # Queue wait counts against the budget: a request whose
                    # deadline already passed fails here instead of burning
                    # dispatch-thread time on a doomed push phase.
                    pending.deadline.checkpoint()
                plan_started = time.perf_counter()
                plan, plan_rng = build_plan(
                    pending.entry, pending.request, deadline=pending.deadline,
                    trace=trace,
                )
                if trace is not None:
                    trace.add_span(
                        "plan", plan_started, time.perf_counter(),
                        push_operations=(
                            plan.counters.push_operations
                            if plan.counters is not None
                            else 0
                        ),
                    )
            except QueryTimeoutError as error:
                self._release_walks(pending.estimated_walks)
                self._fail_timeout(pending, error)
                continue
            except ReproError as error:
                # Client-attributable (bad parameter combination the
                # admission checks could not see) -> HTTP 400.
                self._release_walks(pending.estimated_walks)
                self._fail(pending, error)
                continue
            except Exception as error:  # noqa: BLE001 - future must not hang
                self._release_walks(pending.estimated_walks)
                self._fail(
                    pending,
                    ServiceExecutionError(f"plan construction failed: {error}"),
                )
                continue
            if plan.counters is not None:
                plan.counters.extras.setdefault("backend", self._backend.name)
            if pending.request.pinned:
                pinned.append((pending, plan, plan_rng))
            else:
                fused.setdefault(id(pending.entry), []).append((pending, plan))

        for group in fused.values():
            entry = group[0][0].entry
            plans = [plan for _, plan in group]
            # The fused kernels execute all members' walks interleaved, so
            # the group can only honor one deadline: the *latest* member
            # expiry (no member fails earlier than its own budget allows).
            # Any member without a deadline makes the group unbounded.
            deadlines = [pending.deadline for pending, _ in group]
            group_deadline = (
                max(deadlines, key=lambda d: d.expires_at)
                if all(d is not None for d in deadlines)
                else None
            )
            try:
                results = execute_plans(
                    self._backend, entry.graph, plans, self._rng,
                    deadline=group_deadline,
                    traces=[pending.trace for pending, _ in group],
                )
            except QueryTimeoutError:
                # The whole group's remaining walks were abandoned; fail
                # each member against its own deadline with its own
                # partial-work counters.
                for pending, plan in group:
                    self._release_walks(pending.estimated_walks)
                    if plan.counters is not None:
                        plan.counters.extras["deadline_hit"] = 1.0
                    member = pending.deadline
                    self._fail_timeout(
                        pending,
                        QueryTimeoutError(
                            member.timeout_ms,
                            member.elapsed_ms(),
                            counters=plan.counters,
                        ),
                    )
                continue
            except Exception as error:  # noqa: BLE001 - fail the group, not the loop
                wrapped = (
                    error
                    if isinstance(error, ReproError)
                    else ServiceExecutionError(f"batch execution failed: {error}")
                )
                for pending, _ in group:
                    self._release_walks(pending.estimated_walks)
                    self._fail(pending, wrapped)
                continue
            for (pending, plan), result in zip(group, results):
                walks_executed += plan.counters.random_walks if plan.counters else 0
                self._release_walks(pending.estimated_walks)
                self._resolve(pending, result, batch_size=len(batch))

        for pending, plan, plan_rng in pinned:
            trace = pending.trace
            try:
                kernel_started = time.perf_counter()
                endpoints = run_walk_tasks(
                    self._backend,
                    pending.entry.graph,
                    plan.tasks,
                    plan_rng,
                    counters_list=[plan.counters] * len(plan.tasks),
                    deadline=pending.deadline,
                )
                if trace is not None:
                    trace.add_span(
                        "kernel", kernel_started, time.perf_counter(),
                        backend=self._backend.name, fused=False, pinned=True,
                    )
                finalize_started = time.perf_counter()
                result = plan.finalize(endpoints)
                if trace is not None:
                    trace.add_span(
                        "finalize", finalize_started, time.perf_counter()
                    )
            except QueryTimeoutError as error:
                self._release_walks(pending.estimated_walks)
                self._fail_timeout(pending, error)
                continue
            except Exception as error:  # noqa: BLE001 - future must not hang
                wrapped = (
                    error
                    if isinstance(error, ReproError)
                    else ServiceExecutionError(f"pinned execution failed: {error}")
                )
                self._release_walks(pending.estimated_walks)
                self._fail(pending, wrapped)
                continue
            walks_executed += plan.counters.random_walks if plan.counters else 0
            self._release_walks(pending.estimated_walks)
            self._resolve(pending, result, batch_size=len(batch))

        self.telemetry.record_batch(
            len(batch), walks_executed, time.perf_counter() - started
        )


class ServiceClient:
    """In-process client mirroring the HTTP surface (used by tests/benchmarks)."""

    def __init__(self, service: QueryService) -> None:
        self._service = service

    def query(self, *args, **kwargs) -> QueryResponse:
        """Synchronous query returning the rich :class:`QueryResponse`."""
        return self._service.query(*args, **kwargs)

    def query_dict(
        self,
        graph: str,
        method: str,
        seed_node,
        params: dict | None = None,
        *,
        rng=None,
        top_k=DEFAULT_TOP_K,
        timeout_ms=None,
        timeout: float | None = 60.0,
    ) -> dict:
        """Query and shape the response exactly like the HTTP frontend."""
        response = self._service.query(
            graph, method, seed_node, params, rng=rng, top_k=top_k,
            timeout_ms=timeout_ms, timeout=timeout,
        )
        # The response carries the entry resolved at admission; a second
        # registry lookup here could race with unregister/re-register.
        return response.to_dict()

    def stats(self) -> dict:
        """The ``/stats`` payload."""
        return self._service.stats()

    def graphs(self) -> list[dict]:
        """The ``/graphs`` payload."""
        return self._service.registry.describe()
