"""High-level local clustering API.

``local_cluster(graph, seed, method="tea+")`` runs the full two-phase
pipeline of the paper: estimate an approximate HKPR vector with the chosen
method, then sweep it for the lowest-conductance prefix.  It is the
one-stop entry point the examples and the benchmark harness use.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.clustering.sweep import SweepResult, sweep_cut
from repro.exceptions import ParameterError
from repro.graph.graph import Graph
from repro.hkpr.params import HKPRParams
from repro.hkpr.result import HKPRResult
from repro.utils.rng import RandomState

#: Methods accepted by :func:`local_cluster`.  The flow-based baselines from
#: :mod:`repro.baselines` have their own entry points because they do not
#: produce an HKPR vector to sweep.
SUPPORTED_METHODS = ("exact", "monte-carlo", "cluster-hkpr", "hk-relax", "tea", "tea+")


@dataclass
class LocalClusteringResult:
    """A local cluster together with the HKPR estimation that produced it."""

    cluster: set[int]
    conductance: float
    seed: int
    method: str
    hkpr: HKPRResult
    sweep: SweepResult
    elapsed_seconds: float

    @property
    def size(self) -> int:
        """Number of nodes in the cluster."""
        return len(self.cluster)

    def contains_seed(self) -> bool:
        """Whether the seed node ended up in the returned cluster."""
        return self.seed in self.cluster


def local_cluster(
    graph: Graph,
    seed: int,
    *,
    method: str = "tea+",
    params: HKPRParams | None = None,
    rng: RandomState = None,
    estimator_kwargs: dict | None = None,
) -> LocalClusteringResult:
    """Find a low-conductance cluster containing ``seed``.

    Parameters
    ----------
    graph:
        The input graph.
    seed:
        The seed node the cluster must contain.
    method:
        One of :data:`SUPPORTED_METHODS` (default ``"tea+"``).
    params:
        HKPR parameters; defaults to ``HKPRParams(delta=1/n)``, the setting
        the paper uses for its headline experiments.
    rng:
        Seed or generator for randomized estimators.
    estimator_kwargs:
        Extra keyword arguments forwarded to the estimator (for example
        ``{"eps_a": 1e-5}`` for HK-Relax or ``{"eps": 0.01}`` for
        ClusterHKPR).

    Returns
    -------
    LocalClusteringResult

    Examples
    --------
    >>> from repro.graph.generators import planted_partition_graph
    >>> g, blocks = planted_partition_graph(4, 20, 0.4, 0.01, seed=7)
    >>> result = local_cluster(g, seed=0, method="tea+", rng=7)
    >>> result.contains_seed()
    True
    """
    from repro.hkpr import ESTIMATORS  # local import to avoid a cycle at module load

    if method not in ESTIMATORS:
        raise ParameterError(
            f"unknown method {method!r}; expected one of {sorted(ESTIMATORS)}"
        )
    if not graph.has_node(seed):
        raise ParameterError(f"seed node {seed} is not in the graph")
    if params is None:
        params = HKPRParams(delta=1.0 / max(graph.num_nodes, 2))

    kwargs = dict(estimator_kwargs or {})
    estimator = ESTIMATORS[method]
    start = time.perf_counter()
    if method == "exact":
        hkpr = estimator(graph, seed, params, **kwargs)
    else:
        hkpr = estimator(graph, seed, params, rng=rng, **kwargs)
    sweep = sweep_cut(graph, hkpr)
    elapsed = time.perf_counter() - start

    return LocalClusteringResult(
        cluster=set(sweep.cluster),
        conductance=sweep.conductance,
        seed=seed,
        method=method,
        hkpr=hkpr,
        sweep=sweep,
        elapsed_seconds=elapsed,
    )
