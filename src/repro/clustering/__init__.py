"""Local clustering: conductance, sweep cuts, and the high-level query API."""

from repro.clustering.conductance import conductance, cut_size, volume
from repro.clustering.local import LocalClusteringResult, local_cluster
from repro.clustering.quality import cluster_f1, precision_recall_f1
from repro.clustering.sweep import SweepResult, sweep_cut

__all__ = [
    "LocalClusteringResult",
    "SweepResult",
    "cluster_f1",
    "conductance",
    "cut_size",
    "local_cluster",
    "precision_recall_f1",
    "sweep_cut",
    "volume",
]
