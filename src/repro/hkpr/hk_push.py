"""HK-Push (Algorithm 1): deterministic multi-hop residue push.

HK-Push maintains a *reserve* vector ``q_s`` (a running lower bound of the
HKPR vector) and per-hop *residue* vectors ``r_s^(k)``.  Starting from
``r_s^(0)[s] = 1``, it repeatedly picks an entry whose residue exceeds
``r_max * d(v)``, converts an ``eta(k)/psi(k)`` fraction of it into reserve,
and spreads the remainder evenly over the node's neighbors at hop ``k + 1``.

The invariant (Lemma 1) is that at any point

    rho_s[v] = q_s[v] + sum_{u,k} r_s^(k)[u] * h_u^(k)[v],

so the residues describe exactly the probability mass that has not yet been
settled; TEA later estimates the second term with random walks.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

from repro.exceptions import ParameterError
from repro.graph.graph import Graph
from repro.hkpr.params import HKPRParams
from repro.hkpr.poisson import PoissonWeights
from repro.hkpr.residues import ResidueVectors
from repro.hkpr.result import HKPRResult
from repro.utils.counters import OperationCounters
from repro.utils.deadline import Deadline
from repro.utils.sparsevec import SparseVector


@dataclass
class PushOutcome:
    """Reserve and residue state produced by a push procedure."""

    reserve: SparseVector
    residues: ResidueVectors
    counters: OperationCounters

    @property
    def max_hop(self) -> int:
        """Largest hop with a non-zero residue (the ``K`` returned by Algorithm 1)."""
        return self.residues.max_nonzero_hop()


def hk_push(
    graph: Graph,
    seed_node: int,
    r_max: float,
    weights: PoissonWeights,
    *,
    counters: OperationCounters | None = None,
    deadline: Deadline | None = None,
    pushed: ResidueVectors | None = None,
    settled: ResidueVectors | None = None,
) -> PushOutcome:
    """Run HK-Push (Algorithm 1) from ``seed_node`` with residue threshold ``r_max``.

    Parameters
    ----------
    graph:
        The input graph.
    seed_node:
        The seed node ``s``.
    r_max:
        Push any entry with ``r^(k)[v] > r_max * d(v)``.  Smaller values push
        more and leave less residue mass for the random-walk phase.
    weights:
        Poisson weights for the heat constant ``t``.
    deadline:
        Optional cooperative :class:`~repro.utils.Deadline`; checked once
        per pushed frontier node with the node's degree as the cost.
    pushed / settled:
        Optional per-hop provenance accumulators for
        :mod:`repro.dynamic.repair`: ``pushed`` records the residue value
        distributed from each ``(hop, node)`` over its neighbors, and
        ``settled`` the mass settled in place at isolated nodes.
        Horizon settles (``hop + 1 > hop_limit`` with ``degree > 0``) are
        *not* recorded — they do not depend on the node's adjacency, so
        edge mutations never invalidate them.

    Returns
    -------
    PushOutcome
        The reserve vector ``q_s``, the per-hop residues, and cost counters.
    """
    if not graph.has_node(seed_node):
        raise ParameterError(f"seed node {seed_node} is not in the graph")
    if r_max <= 0.0:
        raise ParameterError(f"r_max must be positive, got {r_max}")
    counters = counters if counters is not None else OperationCounters()
    if deadline is not None:
        deadline.bind(counters)

    reserve = SparseVector()
    residues = ResidueVectors()
    residues.set(0, seed_node, 1.0)

    # FIFO frontier of (hop, node) entries that may exceed the threshold.
    # An entry can be en-queued at most once while it is above threshold;
    # `queued` prevents duplicates.
    frontier: deque[tuple[int, int]] = deque([(0, seed_node)])
    queued: set[tuple[int, int]] = {(0, seed_node)}
    # Beyond this hop the Poisson tail is negligible: pushing there would
    # convert essentially the full residue into reserve anyway.
    hop_limit = weights.max_hop

    while frontier:
        hop, node = frontier.popleft()
        queued.discard((hop, node))
        degree = graph.degree(node)
        residue = residues.get(hop, node)
        if residue <= r_max * degree or residue <= 0.0:
            continue
        if deadline is not None:
            deadline.check(max(degree, 1))

        stop_fraction = weights.stop_probability(hop)
        reserve.add(node, stop_fraction * residue)
        residues.clear(hop, node)
        leftover = (1.0 - stop_fraction) * residue
        if leftover > 0.0 and degree > 0 and hop + 1 <= hop_limit:
            if pushed is not None:
                pushed.add(hop, node, residue)
            share = leftover / degree
            next_hop = hop + 1
            for neighbor in graph.neighbors(node):
                neighbor = int(neighbor)
                new_residue = residues.add(next_hop, neighbor, share)
                counters.record_pushes(1)
                key = (next_hop, neighbor)
                if (
                    new_residue > r_max * graph.degree(neighbor)
                    and key not in queued
                ):
                    frontier.append(key)
                    queued.add(key)
        elif leftover > 0.0:
            # Either the node is isolated or we are past the Poisson horizon;
            # the surviving walk mass would stop here, so settle it as reserve.
            reserve.add(node, leftover)
            if settled is not None and degree == 0:
                settled.add(hop, node, residue)

    counters.residue_entries = max(counters.residue_entries, residues.num_nonzero())
    counters.reserve_entries = max(counters.reserve_entries, reserve.nnz())
    return PushOutcome(reserve=reserve, residues=residues, counters=counters)


def hk_push_hkpr(
    graph: Graph,
    seed_node: int,
    params: HKPRParams,
    *,
    r_max: float | None = None,
    max_pushes: int | None = None,
    rng: object = None,  # accepted for interface uniformity; unused
    deadline: Deadline | None = None,
) -> HKPRResult:
    """HKPR lower bound from HK-Push alone (Algorithm 1, no walk phase).

    The reserve vector HK-Push produces is a deterministic, entry-wise lower
    bound on the HKPR vector whose degree-normalized ordering is already
    sweepable — the push-only ablation of TEA.  The unsettled residue mass
    ``alpha`` is reported in ``counters.extras`` so callers can see how much
    of the diffusion the threshold left uncovered.

    Parameters
    ----------
    r_max:
        Residue threshold.  Defaults to ``eps_r * delta / K`` (``K`` the
        Poisson horizon) — the per-degree threshold HK-Push+ targets — so
        the push cost stays bounded without a walk phase; TEA's cost-
        balancing ``1/(omega t)`` default only makes sense when walks repair
        the remainder.
    max_pushes:
        Optional cap, enforced by raising the threshold to ``1/max_pushes``
        (by Lemma 3 the number of pushes is at most ``1/r_max``).
    """
    start = time.perf_counter()
    weights = PoissonWeights(params.t)
    threshold = (
        r_max
        if r_max is not None
        else params.absolute_error_target() / max(weights.max_hop, 1)
    )
    if max_pushes is not None:
        if max_pushes < 1:
            raise ParameterError(f"max_pushes must be >= 1, got {max_pushes}")
        threshold = max(threshold, 1.0 / max_pushes)

    counters = OperationCounters()
    outcome = hk_push(
        graph, seed_node, threshold, weights, counters=counters, deadline=deadline
    )
    counters.extras["r_max"] = threshold
    counters.extras["alpha"] = sum(
        value for _, _, value in outcome.residues.nonzero_entries()
    )
    return HKPRResult(
        estimates=outcome.reserve,
        seed=seed_node,
        method="hk-push",
        counters=counters,
        elapsed_seconds=time.perf_counter() - start,
    )
