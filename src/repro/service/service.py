"""The query service: composition root, admission control, telemetry.

:class:`QueryService` wires the registry, result cache, planner and
micro-batcher into one long-lived object:

* ``submit`` — validate + normalize the request, try the cache, apply
  admission control (bounded queue *and* a cap on estimated in-flight
  walks), and enqueue; returns a :class:`concurrent.futures.Future`.
* the dispatch thread (inside :class:`~repro.service.batcher.MicroBatcher`)
  calls back into ``_execute_batch``: plans are built per request (push
  phases run here), the walk tasks of all unpinned plans are fused per
  graph through :func:`repro.engine.multi.execute_plans`, pinned plans run
  unfused on their private generators, and each future is resolved with a
  :class:`QueryResponse`.
* :class:`Telemetry` tallies per-request latency, cache hit rate, batch
  occupancy and walk throughput; ``stats()`` returns the JSON the ``/stats``
  endpoint and the load harness consume.

:class:`ServiceClient` is the in-process client: the same request/response
surface the HTTP frontend exposes, minus the socket — tests and the
benchmark load generator drive the service through it.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass

from repro.engine import Backend, get_backend
from repro.engine.multi import execute_plans, run_walk_tasks
from repro.exceptions import (
    QueryTimeoutError,
    ReproError,
    ServiceExecutionError,
    ServiceOverloadedError,
)
from repro.hkpr.result import HKPRResult
from repro.service.batcher import (
    DEFAULT_BATCH_WAIT_SECONDS,
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_PENDING,
    MicroBatcher,
)
from repro.service.cache import ResultCache
from repro.service.planner import (
    DEFAULT_TOP_K,
    QueryRequest,
    build_plan,
    estimate_walks,
    normalize_request,
    walk_estimate_is_tight,
)
from repro.service.registry import GraphEntry, GraphRegistry
from repro.utils.deadline import Deadline
from repro.utils.rng import RandomState, ensure_rng

#: Default cap on the estimated walks admitted but not yet completed.
DEFAULT_MAX_INFLIGHT_WALKS = 50_000_000

#: Default per-query wall-clock budget (ms) when a request does not carry
#: its own ``timeout_ms``.  ``None`` disables the service-level default.
DEFAULT_QUERY_TIMEOUT_MS = 60_000.0


@dataclass
class QueryResponse:
    """One answered query: the estimator result plus serving metadata."""

    request: QueryRequest
    result: HKPRResult
    cached: bool
    latency_seconds: float
    batch_size: int
    entry: GraphEntry | None = None

    def to_dict(self, entry: GraphEntry | None = None) -> dict:
        """The JSON envelope served over HTTP (top-k ranking included).

        Uses the graph entry resolved at admission (carried on the
        response) by default, so frontends need not — and should not —
        re-resolve the graph name afterwards: a concurrent unregister or
        re-register would raise or rank against a different graph.
        """
        entry = entry if entry is not None else self.entry
        if entry is None:
            raise ValueError("QueryResponse carries no graph entry")
        graph = entry.graph
        top = [
            [node, self.result.value(node, graph)]
            for node in self.result.ranking(graph)[: self.request.top_k]
        ]
        return {
            "graph": self.request.graph,
            "method": self.request.method,
            "seed_node": self.request.seed_node,
            "params": dict(self.request.params),
            "top": top,
            "support_size": self.result.support_size(),
            "cached": self.cached,
            "early_exit": self.result.early_exit,
            "latency_ms": round(self.latency_seconds * 1000.0, 3),
            "batch_size": self.batch_size,
            "counters": self.result.counters.as_dict(),
        }


class Telemetry:
    """Thread-safe serving metrics (latency, occupancy, walk throughput)."""

    def __init__(self, *, latency_window: int = 2048) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._requests = 0
        self._cache_hits = 0
        self._rejected = 0
        self._errors = 0
        self._timeouts = 0
        self._walks = 0
        self._batches = 0
        self._batched_requests = 0
        self._max_occupancy = 0
        self._batch_seconds = 0.0
        self._latencies: deque[float] = deque(maxlen=latency_window)

    def record_response(self, latency_seconds: float, *, cached: bool) -> None:
        with self._lock:
            self._requests += 1
            if cached:
                self._cache_hits += 1
            self._latencies.append(latency_seconds)

    def record_rejection(self) -> None:
        with self._lock:
            self._rejected += 1

    def record_error(self) -> None:
        with self._lock:
            self._errors += 1

    def record_timeout(self) -> None:
        """A query tripped its deadline (counted apart from errors)."""
        with self._lock:
            self._timeouts += 1

    def record_batch(self, occupancy: int, walks: int, seconds: float) -> None:
        with self._lock:
            self._batches += 1
            self._batched_requests += occupancy
            self._max_occupancy = max(self._max_occupancy, occupancy)
            self._walks += walks
            self._batch_seconds += seconds

    def snapshot(self) -> dict:
        """JSON-able metrics summary."""
        with self._lock:
            uptime = max(time.monotonic() - self._started, 1e-9)
            latencies = sorted(self._latencies)
            def _pct(p: float) -> float:
                if not latencies:
                    return 0.0
                index = min(int(p * len(latencies)), len(latencies) - 1)
                return latencies[index] * 1000.0
            return {
                "uptime_seconds": round(uptime, 3),
                "requests_total": self._requests,
                "requests_per_second": round(self._requests / uptime, 3),
                "rejected_total": self._rejected,
                "errors_total": self._errors,
                "timeouts_total": self._timeouts,
                "latency_ms": {
                    "mean": round(
                        sum(latencies) / len(latencies) * 1000.0, 3
                    ) if latencies else 0.0,
                    "p50": round(_pct(0.50), 3),
                    "p95": round(_pct(0.95), 3),
                    "max": round(latencies[-1] * 1000.0, 3) if latencies else 0.0,
                },
                "batches": {
                    "count": self._batches,
                    "mean_occupancy": round(
                        self._batched_requests / self._batches, 3
                    ) if self._batches else 0.0,
                    "max_occupancy": self._max_occupancy,
                },
                "walks": {
                    "total": self._walks,
                    "per_second_overall": round(self._walks / uptime, 1),
                    "per_second_busy": round(
                        self._walks / self._batch_seconds, 1
                    ) if self._batch_seconds > 0 else 0.0,
                },
            }


@dataclass
class _Pending:
    """One admitted request travelling through the batch queue."""

    request: QueryRequest
    entry: GraphEntry
    future: Future
    estimated_walks: int
    submitted_at: float
    deadline: Deadline | None = None


class QueryService:
    """A long-lived, concurrent HKPR/PPR query server (in-process core)."""

    def __init__(
        self,
        registry: GraphRegistry | None = None,
        *,
        backend: str | Backend | None = None,
        max_batch: int = DEFAULT_MAX_BATCH,
        batch_wait_seconds: float = DEFAULT_BATCH_WAIT_SECONDS,
        max_pending: int = DEFAULT_MAX_PENDING,
        max_inflight_walks: int = DEFAULT_MAX_INFLIGHT_WALKS,
        cache_entries: int = 1024,
        cache_ttl_seconds: float | None = None,
        default_timeout_ms: float | None = None,
        rng: RandomState = None,
    ) -> None:
        self.registry = registry if registry is not None else GraphRegistry()
        #: Deadline applied to requests that carry no ``timeout_ms`` of
        #: their own; ``None`` leaves such requests unbounded.  The CLI
        #: ``serve`` command defaults this to ``DEFAULT_QUERY_TIMEOUT_MS``.
        self.default_timeout_ms = default_timeout_ms
        self._backend = get_backend(backend)
        self._rng = ensure_rng(rng)
        self.telemetry = Telemetry()
        self.cache: ResultCache | None = (
            # Cache keys start with the graph name (see
            # QueryRequest.cache_key), so grouping by key[0] yields the
            # per-graph hit/miss/eviction breakdown /stats reports.
            ResultCache(
                cache_entries,
                ttl_seconds=cache_ttl_seconds,
                group_of=lambda key: str(key[0]),
            )
            if cache_entries > 0
            else None
        )
        self._max_inflight_walks = max_inflight_walks
        self._inflight_walks = 0
        self._inflight_lock = threading.Lock()
        self._batcher = MicroBatcher(
            self._execute_batch,
            max_batch=max_batch,
            batch_wait_seconds=batch_wait_seconds,
            max_pending=max_pending,
            on_drop=self._drop_pending,
        )

    # -------------------------------------------------------------- #
    # Lifecycle
    # -------------------------------------------------------------- #
    def start(self) -> "QueryService":
        """Start the dispatch thread (idempotent); returns ``self``."""
        self._batcher.start()
        return self

    def stop(self) -> None:
        """Stop dispatching; queued requests fail with :class:`ServiceExecutionError`."""
        self._batcher.stop()

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def backend(self) -> Backend:
        """The walk-execution backend every batch runs on."""
        return self._backend

    # -------------------------------------------------------------- #
    # Request path
    # -------------------------------------------------------------- #
    def submit(
        self,
        graph: str,
        method: str,
        seed_node,
        params: dict | None = None,
        *,
        rng=None,
        top_k=DEFAULT_TOP_K,
        timeout_ms=None,
    ) -> "Future[QueryResponse]":
        """Admit one query; returns a future resolving to :class:`QueryResponse`.

        ``timeout_ms`` (or, absent that, the service's ``default_timeout_ms``)
        starts the query's cooperative deadline *now*, so queue wait counts
        against the budget; the future fails with
        :class:`~repro.exceptions.QueryTimeoutError` when the deadline trips.

        Raises :class:`ServiceError` for invalid requests and
        :class:`ServiceOverloadedError` when admission control rejects
        (full queue or the in-flight walk cap).
        """
        entry = self.registry.get(graph)
        request = normalize_request(
            graph, method, seed_node, params, rng=rng, top_k=top_k,
            timeout_ms=timeout_ms, entry=entry,
        )
        submitted_at = time.perf_counter()

        if self.cache is not None and request.cache_eligible():
            hit = self.cache.get(request.cache_key())
            if hit is not None:
                response = QueryResponse(
                    request=request,
                    result=hit,
                    cached=True,
                    latency_seconds=time.perf_counter() - submitted_at,
                    batch_size=0,
                    entry=entry,
                )
                self.telemetry.record_response(
                    response.latency_seconds, cached=True
                )
                future: "Future[QueryResponse]" = Future()
                future.set_result(response)
                return future

        estimated = max(0, estimate_walks(entry, request))
        if estimated > self._max_inflight_walks and walk_estimate_is_tight(request):
            # A query that would really run more walks than the whole
            # budget can never fit, idle server or not — without this
            # check the single-request escape hatch below would admit it
            # and the walk phase would wedge the dispatch thread (e.g. a
            # default cluster-hkpr query implies ~1/eps^3 walks with
            # eps ~ p_f).  Methods whose estimate is only a loose upper
            # bound (tea/tea+/fora: the push phase usually collapses it)
            # keep the escape hatch.
            self.telemetry.record_rejection()
            raise ServiceOverloadedError(
                f"query's estimated walks ({estimated}) exceed the in-flight "
                f"walk budget ({self._max_inflight_walks}); tighten its "
                f"parameters (e.g. num_walks/max_walks/eps)"
            )
        with self._inflight_lock:
            if (
                self._inflight_walks + estimated > self._max_inflight_walks
                and self._inflight_walks > 0
            ):
                self.telemetry.record_rejection()
                raise ServiceOverloadedError(
                    f"in-flight walk budget exhausted "
                    f"({self._inflight_walks} + {estimated} > "
                    f"{self._max_inflight_walks})"
                )
            self._inflight_walks += estimated

        effective_timeout = (
            request.timeout_ms
            if request.timeout_ms is not None
            else self.default_timeout_ms
        )
        deadline = (
            Deadline(effective_timeout) if effective_timeout is not None else None
        )
        pending = _Pending(
            request, entry, Future(), estimated, submitted_at, deadline
        )
        try:
            self._batcher.submit(pending)
        except ServiceOverloadedError:
            self._release_walks(estimated)
            self.telemetry.record_rejection()
            raise
        return pending.future

    def query(self, *args, timeout: float | None = 60.0, **kwargs) -> QueryResponse:
        """Synchronous :meth:`submit` (blocks for the response)."""
        return self.submit(*args, **kwargs).result(timeout=timeout)

    def stats(self) -> dict:
        """Telemetry + cache + queue + index metrics (the ``/stats`` payload)."""
        snapshot = self.telemetry.snapshot()
        if self.cache is not None:
            cache_stats = self.cache.stats()
            # The cache groups by graph name; present that as "per_graph".
            cache_stats["per_graph"] = cache_stats.pop("per_group", {})
            snapshot["cache"] = cache_stats
        else:
            snapshot["cache"] = None
        index_graphs = {}
        for name in self.registry.names():
            index = self.registry.get(name).index
            if index is not None:
                index_graphs[name] = index.stats()
        if index_graphs:
            hits = sum(info["hits"] for info in index_graphs.values())
            misses = sum(info["misses"] for info in index_graphs.values())
            snapshot["index"] = {
                "graphs": index_graphs,
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
                # Walks the service did not sample online because a stored
                # sketch covered them — the headline "walks saved" number.
                "walks_from_index": sum(
                    info["walks_from_index"] for info in index_graphs.values()
                ),
            }
        else:
            snapshot["index"] = None
        snapshot["queue"] = {
            "pending": self._batcher.pending(),
            "max_batch": self._batcher.max_batch,
        }
        with self._inflight_lock:
            snapshot["inflight_walks"] = self._inflight_walks
        snapshot["backend"] = self._backend.name
        snapshot["graphs"] = self.registry.names()
        snapshot["graph_storage"] = {
            info["name"]: {
                "storage": info["storage"],
                "load_seconds": info["load_seconds"],
                "csr_bytes": info["csr_bytes"],
            }
            for info in self.registry.describe()
        }
        return snapshot

    # -------------------------------------------------------------- #
    # Dispatch side (runs on the batcher thread)
    # -------------------------------------------------------------- #
    def _release_walks(self, count: int) -> None:
        with self._inflight_lock:
            self._inflight_walks = max(0, self._inflight_walks - count)

    def _drop_pending(self, pending: _Pending) -> None:
        self._release_walks(pending.estimated_walks)
        try:
            pending.future.set_exception(
                ServiceExecutionError(
                    "service stopped before the request was dispatched"
                )
            )
        except InvalidStateError:  # client cancelled while queued
            pass

    def _resolve(
        self, pending: _Pending, result: HKPRResult, batch_size: int
    ) -> None:
        response = QueryResponse(
            request=pending.request,
            result=result,
            cached=False,
            latency_seconds=time.perf_counter() - pending.submitted_at,
            batch_size=batch_size,
            entry=pending.entry,
        )
        if self.cache is not None and pending.request.cache_eligible():
            self.cache.put(pending.request.cache_key(), result)
        self.telemetry.record_response(response.latency_seconds, cached=False)
        try:
            pending.future.set_result(response)
        except InvalidStateError:  # client cancelled mid-flight; result dropped
            pass

    def _fail(self, pending: _Pending, error: Exception) -> None:
        self.telemetry.record_error()
        try:
            pending.future.set_exception(error)
        except InvalidStateError:  # client cancelled mid-flight
            pass

    def _fail_timeout(self, pending: _Pending, error: QueryTimeoutError) -> None:
        """Deadline trips are accounted apart from errors (see ``/stats``)."""
        self.telemetry.record_timeout()
        try:
            pending.future.set_exception(error)
        except InvalidStateError:  # client cancelled mid-flight
            pass

    def _execute_batch(self, batch: list[_Pending]) -> None:
        """Plan every request, fuse unpinned walk phases per graph, finalize."""
        started = time.perf_counter()
        walks_executed = 0
        # Keyed by entry identity, not graph name: re-registering a name
        # mid-flight must not fuse plans built against different graphs.
        fused: dict[int, list[tuple[_Pending, object]]] = {}
        pinned: list[tuple[_Pending, object, object]] = []
        for pending in batch:
            # Claim the future before doing any work: a client that already
            # cancelled gets skipped, and a RUNNING future can no longer be
            # cancelled out from under _resolve/_fail.
            if not pending.future.set_running_or_notify_cancel():
                self._release_walks(pending.estimated_walks)
                continue
            try:
                if pending.deadline is not None:
                    # Queue wait counts against the budget: a request whose
                    # deadline already passed fails here instead of burning
                    # dispatch-thread time on a doomed push phase.
                    pending.deadline.checkpoint()
                plan, plan_rng = build_plan(
                    pending.entry, pending.request, deadline=pending.deadline
                )
            except QueryTimeoutError as error:
                self._release_walks(pending.estimated_walks)
                self._fail_timeout(pending, error)
                continue
            except ReproError as error:
                # Client-attributable (bad parameter combination the
                # admission checks could not see) -> HTTP 400.
                self._release_walks(pending.estimated_walks)
                self._fail(pending, error)
                continue
            except Exception as error:  # noqa: BLE001 - future must not hang
                self._release_walks(pending.estimated_walks)
                self._fail(
                    pending,
                    ServiceExecutionError(f"plan construction failed: {error}"),
                )
                continue
            if plan.counters is not None:
                plan.counters.extras.setdefault("backend", self._backend.name)
            if pending.request.pinned:
                pinned.append((pending, plan, plan_rng))
            else:
                fused.setdefault(id(pending.entry), []).append((pending, plan))

        for group in fused.values():
            entry = group[0][0].entry
            plans = [plan for _, plan in group]
            # The fused kernels execute all members' walks interleaved, so
            # the group can only honor one deadline: the *latest* member
            # expiry (no member fails earlier than its own budget allows).
            # Any member without a deadline makes the group unbounded.
            deadlines = [pending.deadline for pending, _ in group]
            group_deadline = (
                max(deadlines, key=lambda d: d.expires_at)
                if all(d is not None for d in deadlines)
                else None
            )
            try:
                results = execute_plans(
                    self._backend, entry.graph, plans, self._rng,
                    deadline=group_deadline,
                )
            except QueryTimeoutError:
                # The whole group's remaining walks were abandoned; fail
                # each member against its own deadline with its own
                # partial-work counters.
                for pending, plan in group:
                    self._release_walks(pending.estimated_walks)
                    if plan.counters is not None:
                        plan.counters.extras["deadline_hit"] = 1.0
                    member = pending.deadline
                    self._fail_timeout(
                        pending,
                        QueryTimeoutError(
                            member.timeout_ms,
                            member.elapsed_ms(),
                            counters=plan.counters,
                        ),
                    )
                continue
            except Exception as error:  # noqa: BLE001 - fail the group, not the loop
                wrapped = (
                    error
                    if isinstance(error, ReproError)
                    else ServiceExecutionError(f"batch execution failed: {error}")
                )
                for pending, _ in group:
                    self._release_walks(pending.estimated_walks)
                    self._fail(pending, wrapped)
                continue
            for (pending, plan), result in zip(group, results):
                walks_executed += plan.counters.random_walks if plan.counters else 0
                self._release_walks(pending.estimated_walks)
                self._resolve(pending, result, batch_size=len(batch))

        for pending, plan, plan_rng in pinned:
            try:
                endpoints = run_walk_tasks(
                    self._backend,
                    pending.entry.graph,
                    plan.tasks,
                    plan_rng,
                    counters_list=[plan.counters] * len(plan.tasks),
                    deadline=pending.deadline,
                )
                result = plan.finalize(endpoints)
            except QueryTimeoutError as error:
                self._release_walks(pending.estimated_walks)
                self._fail_timeout(pending, error)
                continue
            except Exception as error:  # noqa: BLE001 - future must not hang
                wrapped = (
                    error
                    if isinstance(error, ReproError)
                    else ServiceExecutionError(f"pinned execution failed: {error}")
                )
                self._release_walks(pending.estimated_walks)
                self._fail(pending, wrapped)
                continue
            walks_executed += plan.counters.random_walks if plan.counters else 0
            self._release_walks(pending.estimated_walks)
            self._resolve(pending, result, batch_size=len(batch))

        self.telemetry.record_batch(
            len(batch), walks_executed, time.perf_counter() - started
        )


class ServiceClient:
    """In-process client mirroring the HTTP surface (used by tests/benchmarks)."""

    def __init__(self, service: QueryService) -> None:
        self._service = service

    def query(self, *args, **kwargs) -> QueryResponse:
        """Synchronous query returning the rich :class:`QueryResponse`."""
        return self._service.query(*args, **kwargs)

    def query_dict(
        self,
        graph: str,
        method: str,
        seed_node,
        params: dict | None = None,
        *,
        rng=None,
        top_k=DEFAULT_TOP_K,
        timeout_ms=None,
        timeout: float | None = 60.0,
    ) -> dict:
        """Query and shape the response exactly like the HTTP frontend."""
        response = self._service.query(
            graph, method, seed_node, params, rng=rng, top_k=top_k,
            timeout_ms=timeout_ms, timeout=timeout,
        )
        # The response carries the entry resolved at admission; a second
        # registry lookup here could race with unregister/re-register.
        return response.to_dict()

    def stats(self) -> dict:
        """The ``/stats`` payload."""
        return self._service.stats()

    def graphs(self) -> list[dict]:
        """The ``/graphs`` payload."""
        return self._service.registry.describe()
