"""Machine-independent cost accounting.

The paper reports wall-clock milliseconds on a specific C++/server setup.  A
pure-Python reproduction cannot match those absolute numbers, so every HKPR
algorithm in this package additionally reports *operation counters*:

* ``push_operations`` — residue-to-neighbor transfers (the unit HK-Push,
  HK-Push+ and HK-Relax are budgeted in),
* ``random_walks`` — number of walks started,
* ``walk_steps`` — total edges traversed by walks,
* ``residue_entries`` — peak number of non-zero residue entries (a proxy for
  the working-set memory the paper measures in Figure 5).

These counters make the cost model of each algorithm reproducible regardless
of host speed and are what the benchmark harness reports alongside seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OperationCounters:
    """Mutable tally of the work done by one HKPR estimation."""

    push_operations: int = 0
    random_walks: int = 0
    walk_steps: int = 0
    residue_entries: int = 0
    reserve_entries: int = 0
    extras: dict[str, float | str] = field(default_factory=dict)

    def record_pushes(self, count: int) -> None:
        """Add ``count`` push operations."""
        self.push_operations += count

    def record_walk(self, steps: int) -> None:
        """Record one random walk that traversed ``steps`` edges."""
        self.random_walks += 1
        self.walk_steps += steps

    def merge(self, other: "OperationCounters") -> "OperationCounters":
        """Return a new counter that is the element-wise sum of two counters."""
        merged = OperationCounters(
            push_operations=self.push_operations + other.push_operations,
            random_walks=self.random_walks + other.random_walks,
            walk_steps=self.walk_steps + other.walk_steps,
            residue_entries=max(self.residue_entries, other.residue_entries),
            reserve_entries=max(self.reserve_entries, other.reserve_entries),
        )
        merged.extras = {**self.extras}
        for key, value in other.extras.items():
            existing = merged.extras.get(key)
            if isinstance(value, str) or isinstance(existing, str):
                # Tag-like extras (e.g. the execution backend name) are kept
                # when both sides agree and marked "mixed" otherwise.
                merged.extras[key] = value if existing in (None, value) else "mixed"
            else:
                merged.extras[key] = (existing or 0.0) + value
        return merged

    @property
    def total_work(self) -> int:
        """Pushes plus walk steps — a single scalar proxy for running time."""
        return self.push_operations + self.walk_steps

    def memory_entries(self) -> int:
        """Number of vector entries held, the Figure-5 memory proxy."""
        return self.residue_entries + self.reserve_entries

    def as_dict(self) -> dict[str, float | str]:
        """Flatten the counters into a plain dictionary for reporting."""
        out: dict[str, float | str] = {
            "push_operations": self.push_operations,
            "random_walks": self.random_walks,
            "walk_steps": self.walk_steps,
            "residue_entries": self.residue_entries,
            "reserve_entries": self.reserve_entries,
            "total_work": self.total_work,
        }
        out.update(self.extras)
        return out
