"""HK-Push+ (Algorithm 4): budgeted, hop-capped residue push.

HK-Push+ differs from HK-Push (Algorithm 1) in three ways, all aimed at the
(d, eps_r, delta) guarantee rather than an ad-hoc residue threshold:

1. It pushes entries whose residue exceeds ``eps_r * delta / K * d(v)``,
   trying to drive the Theorem-2 quantity
   ``sum_k max_u r^(k)[u]/d(u)`` below ``eps_r * delta``.
2. It stops early once either that condition holds (in which case the
   reserve alone is already (d, eps_r, delta)-approximate) or a push budget
   ``n_p`` is exhausted (the cost of a "push round" on node ``v`` is
   ``d(v)``, matching Line 5 of Algorithm 4).
3. The maximum hop ``K`` is fixed up front (Eq. 20), so the above-threshold
   test never needs re-evaluation when ``K`` would otherwise change.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

from repro.exceptions import ParameterError
from repro.graph.graph import Graph
from repro.hkpr.hk_push import PushOutcome
from repro.hkpr.params import HKPRParams
from repro.hkpr.poisson import PoissonWeights
from repro.hkpr.residues import ResidueVectors
from repro.hkpr.result import HKPRResult
from repro.utils.counters import OperationCounters
from repro.utils.deadline import Deadline
from repro.utils.sparsevec import SparseVector


@dataclass
class PushPlusOutcome(PushOutcome):
    """HK-Push+ outcome: a :class:`PushOutcome` plus its termination reason."""

    satisfied_early_exit: bool = False
    budget_exhausted: bool = False
    pushes_used: int = 0


def hk_push_plus(
    graph: Graph,
    seed_node: int,
    eps_r: float,
    delta: float,
    max_hop: int,
    push_budget: int,
    weights: PoissonWeights,
    *,
    counters: OperationCounters | None = None,
    check_interval: int = 64,
    deadline: Deadline | None = None,
) -> PushPlusOutcome:
    """Run HK-Push+ (Algorithm 4) from ``seed_node``.

    Parameters
    ----------
    eps_r, delta:
        Error parameters; the push threshold is ``eps_r * delta / max_hop * d(v)``
        and the early-exit target is ``eps_r * delta``.
    max_hop:
        The hop cap ``K``; residues are only created for hops ``0..K``.
    push_budget:
        Maximum number of push operations ``n_p`` (each push round on node
        ``v`` accounts for ``d(v)`` operations).
    check_interval:
        The early-exit condition ``sum_k max_u r^(k)[u]/d(u) <= eps_r*delta``
        costs O(#residue entries) to evaluate, so it is checked every
        ``check_interval`` push rounds rather than after every one.  This is
        an implementation schedule choice only; correctness is unaffected.
    deadline:
        Optional cooperative :class:`~repro.utils.Deadline`; checked once
        per push round with the round's cost (the node's degree).

    Returns
    -------
    PushPlusOutcome
    """
    if not graph.has_node(seed_node):
        raise ParameterError(f"seed node {seed_node} is not in the graph")
    if eps_r <= 0 or delta <= 0:
        raise ParameterError("eps_r and delta must be positive")
    if max_hop < 1:
        raise ParameterError(f"max_hop must be >= 1, got {max_hop}")
    if push_budget < 1:
        raise ParameterError(f"push budget must be >= 1, got {push_budget}")
    counters = counters if counters is not None else OperationCounters()
    if deadline is not None:
        deadline.bind(counters)

    absolute_target = eps_r * delta
    push_threshold_per_degree = absolute_target / max_hop

    reserve = SparseVector()
    residues = ResidueVectors(max_hop)
    residues.set(0, seed_node, 1.0)

    frontier: deque[tuple[int, int]] = deque([(0, seed_node)])
    queued: set[tuple[int, int]] = {(0, seed_node)}
    pushes_used = 0
    rounds = 0
    satisfied = False
    exhausted = False

    while frontier:
        hop, node = frontier.popleft()
        queued.discard((hop, node))
        if hop >= max_hop:
            continue
        degree = graph.degree(node)
        residue = residues.get(hop, node)
        if residue <= push_threshold_per_degree * degree or residue <= 0.0:
            continue
        if deadline is not None:
            deadline.check(max(degree, 1))

        # Account for the cost of this push round *before* doing it, matching
        # Algorithm 4 (Lines 5-7) which checks the budget inside the loop.
        pushes_used += degree
        rounds += 1
        if pushes_used >= push_budget:
            exhausted = True

        stop_fraction = weights.stop_probability(hop)
        reserve.add(node, stop_fraction * residue)
        residues.clear(hop, node)
        leftover = (1.0 - stop_fraction) * residue
        if leftover > 0.0 and degree > 0:
            share = leftover / degree
            next_hop = hop + 1
            for neighbor in graph.neighbors(node):
                neighbor = int(neighbor)
                new_residue = residues.add(next_hop, neighbor, share)
                counters.record_pushes(1)
                key = (next_hop, neighbor)
                if (
                    next_hop < max_hop
                    and key not in queued
                    and new_residue > push_threshold_per_degree * graph.degree(neighbor)
                ):
                    frontier.append(key)
                    queued.add(key)
        elif leftover > 0.0:
            # Isolated node: surviving mass stops here.
            reserve.add(node, leftover)

        if exhausted:
            break
        if rounds % check_interval == 0:
            if residues.max_normalized_sum(graph) <= absolute_target:
                satisfied = True
                break

    if not satisfied and not exhausted:
        # The frontier drained: every residue is below its push threshold, so
        # the Theorem-2 sum is at most K * (eps_r*delta/K) = eps_r*delta.
        satisfied = residues.max_normalized_sum(graph) <= absolute_target

    counters.residue_entries = max(counters.residue_entries, residues.num_nonzero())
    counters.reserve_entries = max(counters.reserve_entries, reserve.nnz())
    return PushPlusOutcome(
        reserve=reserve,
        residues=residues,
        counters=counters,
        satisfied_early_exit=satisfied,
        budget_exhausted=exhausted,
        pushes_used=pushes_used,
    )


def hk_push_plus_hkpr(
    graph: Graph,
    seed_node: int,
    params: HKPRParams,
    *,
    push_budget: int | None = None,
    max_hop: int | None = None,
    rng: object = None,  # accepted for interface uniformity; unused
    deadline: Deadline | None = None,
) -> HKPRResult:
    """HKPR lower bound from HK-Push+ alone (Algorithm 4, no walk phase).

    The budgeted, hop-capped push of TEA+ without its random-walk repair:
    deterministic, sweepable, and — when the Theorem-2 condition holds at
    termination (``early_exit`` on the result) — already
    (d, eps_r, delta)-approximate on its own.

    Parameters
    ----------
    push_budget, max_hop:
        Overrides for ``n_p`` and ``K``; defaults follow Algorithm 5, Line 5
        (``omega * t / 2`` and Eq. 20), exactly as TEA+ uses them.
    """
    start = time.perf_counter()
    weights = PoissonWeights(params.t)
    budget = (
        push_budget if push_budget is not None else params.push_budget_tea_plus(graph)
    )
    hop_cap = max_hop if max_hop is not None else params.max_hop_tea_plus(graph)

    counters = OperationCounters()
    counters.extras["push_budget"] = float(budget)
    counters.extras["max_hop"] = float(hop_cap)
    outcome = hk_push_plus(
        graph,
        seed_node,
        params.eps_r,
        params.delta,
        hop_cap,
        budget,
        weights,
        counters=counters,
        deadline=deadline,
    )
    counters.extras["pushes_used"] = float(outcome.pushes_used)
    counters.extras["alpha"] = sum(
        value for _, _, value in outcome.residues.nonzero_entries()
    )
    return HKPRResult(
        estimates=outcome.reserve,
        seed=seed_node,
        method="hk-push+",
        counters=counters,
        elapsed_seconds=time.perf_counter() - start,
        early_exit=outcome.satisfied_early_exit,
    )
