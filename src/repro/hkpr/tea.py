"""TEA (Algorithm 3): two-phase heat kernel approximation.

TEA first runs HK-Push with residue threshold ``r_max`` to obtain a reserve
vector ``q_s`` (a deterministic lower bound on the HKPR vector) and per-hop
residue vectors.  By Lemma 1 the unsettled mass equals

    sum_{u,k} r_s^(k)[u] * h_u^(k)[v],

so TEA estimates it with ``n_r = alpha * omega`` hop-conditioned random
walks (Algorithm 2), where ``alpha`` is the total residue mass and

    omega = 2 (1 + eps_r/3) log(1/p'_f) / (eps_r^2 delta).

Walk starting entries ``(u, k)`` are sampled proportionally to the residues
via an alias structure; each walk ending at ``v`` adds ``alpha / n_r`` to the
estimate.  Theorem 1 shows the output is (d, eps_r, delta)-approximate with
probability at least ``1 - p_f``.

The paper recommends ``r_max = Theta(1 / (omega t))`` so the push and walk
phases cost roughly the same; :func:`repro.hkpr.params.HKPRParams.rmax_tea`
implements that default and callers may override it (the benchmark harness
tunes it per dataset, mirroring §7.3).
"""

from __future__ import annotations

import math
import time

from repro.engine import Backend, get_backend
from repro.exceptions import ParameterError
from repro.graph.graph import Graph
from repro.hkpr.hk_push import hk_push
from repro.hkpr.params import HKPRParams
from repro.hkpr.poisson import PoissonWeights
from repro.hkpr.result import HKPRResult
from repro.hkpr.walk_phase import run_residue_walk_phase
from repro.utils.counters import OperationCounters
from repro.utils.deadline import Deadline
from repro.utils.rng import RandomState, ensure_rng


def tea(
    graph: Graph,
    seed_node: int,
    params: HKPRParams,
    *,
    r_max: float | None = None,
    rng: RandomState = None,
    max_walks: int | None = None,
    max_pushes: int | None = None,
    backend: str | Backend | None = None,
    deadline: Deadline | None = None,
) -> HKPRResult:
    """Estimate the HKPR vector of ``seed_node`` with TEA (Algorithm 3).

    Parameters
    ----------
    graph, seed_node, params:
        The (d, eps_r, delta, p_f) query.
    r_max:
        HK-Push residue threshold; defaults to ``1 / (omega * t)`` (§4.2).
    rng:
        Seed or generator for the walk phase.
    max_walks:
        Optional safety cap on the number of walks (guarantee waived when it
        triggers); ``None`` means use the full theory-driven count.
    max_pushes:
        Optional cap on the push phase.  By Lemma 3 the number of pushes is
        at most ``1 / r_max``, so the cap is enforced by raising the residue
        threshold to ``1 / max_pushes`` when the default would exceed it.
        This mirrors the paper's §7.3 protocol of re-tuning ``r_max`` per
        dataset to balance the two phases.
    backend:
        Execution backend for the walk phase (name, instance, or ``None``
        for the process default; see :mod:`repro.engine`).
    deadline:
        Optional cooperative :class:`~repro.utils.Deadline`, threaded
        through both the push loop and the chunked walk phase.

    Returns
    -------
    HKPRResult
    """
    if not graph.has_node(seed_node):
        raise ParameterError(f"seed node {seed_node} is not in the graph")
    generator = ensure_rng(rng)
    engine = get_backend(backend)
    start = time.perf_counter()

    weights = PoissonWeights(params.t)
    omega = params.omega_tea(graph)
    threshold = r_max if r_max is not None else params.rmax_tea(graph)
    if max_pushes is not None:
        if max_pushes < 1:
            raise ParameterError(f"max_pushes must be >= 1, got {max_pushes}")
        threshold = max(threshold, 1.0 / max_pushes)

    counters = OperationCounters()
    push_outcome = hk_push(
        graph, seed_node, threshold, weights, counters=counters, deadline=deadline
    )
    estimates = push_outcome.reserve
    residues = push_outcome.residues

    entries = list(residues.nonzero_entries())
    alpha = sum(value for _, _, value in entries)
    counters.extras["alpha"] = alpha
    counters.extras["omega"] = omega
    counters.extras["backend"] = engine.name

    if alpha > 0.0 and entries:
        num_walks = int(math.ceil(alpha * omega))
        if max_walks is not None:
            num_walks = min(num_walks, max_walks)
        if num_walks > 0:
            run_residue_walk_phase(
                graph,
                entries,
                num_walks,
                alpha / num_walks,
                engine=engine,
                weights=weights,
                rng=generator,
                estimates=estimates,
                counters=counters,
                deadline=deadline,
            )

    counters.reserve_entries = max(counters.reserve_entries, estimates.nnz())
    elapsed = time.perf_counter() - start
    return HKPRResult(
        estimates=estimates,
        seed=seed_node,
        method="tea",
        counters=counters,
        elapsed_seconds=elapsed,
    )
