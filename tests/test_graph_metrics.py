"""Tests for whole-graph structural metrics."""

from __future__ import annotations

import pytest

from repro.exceptions import EmptyGraphError
from repro.graph.generators import (
    complete_graph,
    path_graph,
    powerlaw_cluster_graph,
    ring_graph,
    star_graph,
)
from repro.graph.graph import Graph
from repro.graph.metrics import (
    average_clustering_coefficient,
    degree_assortativity,
    degree_histogram,
    local_clustering_coefficient,
    summarize_graph,
    triangle_count,
)


class TestLocalClusteringCoefficient:
    def test_complete_graph_is_one(self):
        graph = complete_graph(5)
        assert all(
            local_clustering_coefficient(graph, v) == pytest.approx(1.0)
            for v in graph.nodes()
        )

    def test_star_hub_is_zero(self):
        graph = star_graph(6)
        assert local_clustering_coefficient(graph, 0) == 0.0

    def test_degree_one_node_is_zero(self):
        graph = path_graph(4)
        assert local_clustering_coefficient(graph, 0) == 0.0

    def test_triangle_with_pendant(self):
        graph = Graph(4, [(0, 1), (1, 2), (2, 0), (0, 3)])
        # Node 0 has neighbors {1, 2, 3}; only the (1, 2) pair is connected.
        assert local_clustering_coefficient(graph, 0) == pytest.approx(1 / 3)


class TestAverageClusteringCoefficient:
    def test_ring_is_zero(self):
        assert average_clustering_coefficient(ring_graph(10)) == 0.0

    def test_complete_is_one(self):
        assert average_clustering_coefficient(complete_graph(6)) == pytest.approx(1.0)

    def test_empty_graph_raises(self):
        with pytest.raises(EmptyGraphError):
            average_clustering_coefficient(Graph(0, []))

    def test_sampled_estimate_close_to_exact(self):
        graph = powerlaw_cluster_graph(400, 4, 0.5, seed=2)
        exact = average_clustering_coefficient(graph)
        sampled = average_clustering_coefficient(graph, sample_size=200, seed=1)
        assert abs(exact - sampled) < 0.1

    def test_holme_kim_more_clustered_than_random(self):
        clustered = powerlaw_cluster_graph(300, 4, 0.8, seed=3)
        unclustered = ring_graph(300)
        assert average_clustering_coefficient(
            clustered, sample_size=150, seed=0
        ) > average_clustering_coefficient(unclustered)


class TestTriangleCountAndHistogram:
    def test_triangle_count_complete(self):
        assert triangle_count(complete_graph(5)) == 10

    def test_triangle_count_ring(self):
        assert triangle_count(ring_graph(8)) == 0

    def test_triangle_count_single_triangle(self):
        graph = Graph(4, [(0, 1), (1, 2), (2, 0), (0, 3)])
        assert triangle_count(graph) == 1

    def test_degree_histogram(self):
        graph = star_graph(5)
        assert degree_histogram(graph) == {1: 4, 4: 1}

    def test_degree_histogram_empty(self):
        assert degree_histogram(Graph(0, [])) == {}


class TestAssortativityAndSummary:
    def test_regular_graph_assortativity_zero(self):
        assert degree_assortativity(ring_graph(12)) == 0.0

    def test_star_is_disassortative(self):
        assert degree_assortativity(star_graph(10)) < 0.0

    def test_edgeless_graph_raises(self):
        with pytest.raises(EmptyGraphError):
            degree_assortativity(Graph(3, []))

    def test_summary_fields(self):
        graph = powerlaw_cluster_graph(200, 3, 0.4, seed=4)
        summary = summarize_graph(graph, clustering_sample=100, seed=0)
        data = summary.as_dict()
        assert data["n"] == graph.num_nodes
        assert data["m"] == graph.num_edges
        assert data["max_degree"] >= data["avg_degree"]
        assert 0.0 <= data["clustering_coefficient"] <= 1.0
        assert -1.0 <= data["assortativity"] <= 1.0

    def test_summary_empty_graph_raises(self):
        with pytest.raises(EmptyGraphError):
            summarize_graph(Graph(0, []))
