"""Cluster quality against ground-truth communities (precision / recall / F1).

Reproduces the scoring used in the paper's Table 8: a produced cluster is
compared against the ground-truth communities containing the seed node and
the best F1 over those communities is reported (when a node belongs to
several communities the most favourable one is used, the standard protocol
for SNAP ground-truth communities).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.exceptions import ParameterError
from repro.graph.communities import CommunitySet


def precision_recall_f1(
    predicted: Iterable[int], truth: Iterable[int]
) -> tuple[float, float, float]:
    """Precision, recall and F1 of ``predicted`` against ``truth``.

    Examples
    --------
    >>> precision_recall_f1({1, 2, 3}, {2, 3, 4})
    (0.6666666666666666, 0.6666666666666666, 0.6666666666666666)
    """
    predicted_set = {int(v) for v in predicted}
    truth_set = {int(v) for v in truth}
    if not truth_set:
        raise ParameterError("ground-truth community must be non-empty")
    if not predicted_set:
        return 0.0, 0.0, 0.0
    overlap = len(predicted_set & truth_set)
    precision = overlap / len(predicted_set)
    recall = overlap / len(truth_set)
    if precision + recall == 0.0:
        return precision, recall, 0.0
    f1 = 2.0 * precision * recall / (precision + recall)
    return precision, recall, f1


def cluster_f1(
    predicted: Iterable[int],
    seed: int,
    communities: CommunitySet,
) -> float:
    """Best F1 of ``predicted`` over the ground-truth communities of ``seed``.

    Returns 0.0 when the seed belongs to no known community, mirroring how
    such seeds contribute nothing in the Table-8 protocol.
    """
    candidates = communities.communities_of(seed)
    if not candidates:
        return 0.0
    best = 0.0
    for community in candidates:
        _, _, f1 = precision_recall_f1(predicted, community)
        if f1 > best:
            best = f1
    return best


def average_f1(
    clusters_by_seed: dict[int, Iterable[int]],
    communities: CommunitySet,
) -> float:
    """Mean of :func:`cluster_f1` over a set of (seed, cluster) pairs."""
    if not clusters_by_seed:
        raise ParameterError("need at least one (seed, cluster) pair")
    total = 0.0
    for seed, cluster in clusters_by_seed.items():
        total += cluster_f1(cluster, seed, communities)
    return total / len(clusters_by_seed)
