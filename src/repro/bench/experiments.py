"""Per-table / per-figure experiment drivers.

Each function regenerates one table or figure of the paper's evaluation
(§7) on the surrogate datasets, and returns a list of row dictionaries that
:func:`repro.bench.reporting.format_rows` can render.  The drivers expose
scale knobs (datasets, number of seeds, walk caps) because the paper's
settings — fifty seeds per dataset on billion-edge graphs — are far beyond a
pure-Python run; the *defaults* are sized so the whole benchmark suite
completes in minutes while preserving each experiment's comparative shape.

Experiment-to-paper map (see also DESIGN.md §4 and EXPERIMENTS.md):

========================  =====================================
Function                  Paper element
========================  =====================================
``table7_statistics``     Table 7 (dataset statistics)
``figure2_tuning_c``      Figure 2 (running time of TEA+ vs c)
``figure3_tea_vs_teaplus``Figure 3 (running time vs eps_r)
``figure4_time_quality``  Figure 4 (time vs conductance)
``figure5_memory``        Figure 5 (memory vs conductance)
``figure6_ndcg``          Figure 6 (time vs NDCG)
``table8_ground_truth``   Table 8 (F1 vs ground-truth communities)
``figure7_density``       Figure 7 (subgraph-density sensitivity)
``figure8_9_heat``        Figures 8 & 9 (effect of heat constant t)
``ablation_tea_plus``     DESIGN.md §6 ablations (beyond the paper)
========================  =====================================
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.bench.datasets import (
    DATASETS,
    QUICK_DATASETS,
    dataset_statistics,
    load_community_dataset,
    load_dataset,
)
from repro.bench.harness import (
    MethodConfig,
    aggregate,
    estimate_hkpr_only,
    run_query_set,
    sample_seed_nodes,
)
from repro.clustering.local import local_cluster
from repro.clustering.quality import cluster_f1
from repro.graph.subgraph import sample_density_stratified_seeds
from repro.hkpr.exact import exact_hkpr
from repro.hkpr.params import HKPRParams
from repro.hkpr.tea_plus import tea_plus
from repro.ranking.ndcg import ndcg_of_estimate
from repro.utils.rng import RandomState, ensure_rng

#: Walk caps keep the pure-Python Monte-Carlo style baselines tractable.
DEFAULT_WALK_CAP = 20_000
#: Push cap applied to TEA (its default r_max can imply millions of pushes).
DEFAULT_PUSH_CAP = 400_000


# --------------------------------------------------------------------- #
# Method sweep configurations (mirroring §7.4's per-method parameters)
# --------------------------------------------------------------------- #
def default_method_sweeps(
    graph_size: int,
    *,
    walk_cap: int = DEFAULT_WALK_CAP,
    delta_values: tuple[float, ...] | None = None,
    eps_a_values: tuple[float, ...] | None = None,
    eps_values: tuple[float, ...] | None = None,
    include_flow_methods: bool = False,
) -> list[MethodConfig]:
    """The per-method parameter sweeps used by Figures 4, 5 and 7.

    The paper sweeps ``delta`` for Monte-Carlo / TEA / TEA+, ``eps_a`` for
    HK-Relax, ``eps`` for ClusterHKPR, the locality parameter for
    SimpleLocal and the iteration count for CRD.  The default grids are
    scaled to the surrogate graph sizes (``delta`` around ``1/n``).
    """
    base = 1.0 / max(graph_size, 2)
    # The paper sweeps delta across several decades below 1/n; these three
    # settings span the loose-to-tight range that is tractable in pure Python.
    deltas = delta_values or (base, base * 0.1, base * 0.01)
    eps_as = eps_a_values or (2e-3, 5e-4, 1e-4)
    epses = eps_values or (0.3, 0.2, 0.1)

    configs: list[MethodConfig] = []
    for delta in deltas:
        params = HKPRParams(delta=delta)
        configs.append(
            MethodConfig(
                method="monte-carlo",
                label=f"monte-carlo(delta={delta:.2e})",
                params=params,
                estimator_kwargs={"num_walks": walk_cap},
            )
        )
        configs.append(
            MethodConfig(
                method="tea",
                label=f"tea(delta={delta:.2e})",
                params=params,
                estimator_kwargs={"max_walks": walk_cap, "max_pushes": DEFAULT_PUSH_CAP},
            )
        )
        configs.append(
            MethodConfig(
                method="tea+",
                label=f"tea+(delta={delta:.2e})",
                params=params,
                estimator_kwargs={"max_walks": walk_cap},
            )
        )
    for eps_a in eps_as:
        configs.append(
            MethodConfig(
                method="hk-relax",
                label=f"hk-relax(eps_a={eps_a:.2e})",
                estimator_kwargs={"eps_a": eps_a},
            )
        )
    for eps in epses:
        configs.append(
            MethodConfig(
                method="cluster-hkpr",
                label=f"cluster-hkpr(eps={eps:g})",
                estimator_kwargs={"eps": eps, "num_walks": walk_cap},
            )
        )
    if include_flow_methods:
        for locality in (0.1, 0.05):
            configs.append(
                MethodConfig(
                    method="simple-local",
                    label=f"simple-local(locality={locality:g})",
                    estimator_kwargs={"locality": locality},
                )
            )
        for iterations in (7, 15):
            configs.append(
                MethodConfig(
                    method="crd",
                    label=f"crd(iterations={iterations})",
                    estimator_kwargs={"iterations": iterations},
                )
            )
    return configs


# --------------------------------------------------------------------- #
# Table 7
# --------------------------------------------------------------------- #
def table7_statistics(datasets: tuple[str, ...] | None = None) -> list[dict[str, Any]]:
    """Dataset statistics (n, m, average degree) — Table 7."""
    names = datasets or tuple(DATASETS)
    return [dataset_statistics(name) for name in names]


# --------------------------------------------------------------------- #
# Figure 2: tuning c for TEA+
# --------------------------------------------------------------------- #
def figure2_tuning_c(
    datasets: tuple[str, ...] = QUICK_DATASETS,
    *,
    c_values: tuple[float, ...] = (0.5, 1.0, 2.0, 2.5, 3.0, 4.0, 5.0),
    num_seeds: int = 3,
    walk_cap: int = DEFAULT_WALK_CAP,
    rng: RandomState = 7,
) -> list[dict[str, Any]]:
    """TEA+ running time as a function of the hop-cap constant ``c`` (Figure 2).

    Uses ``eps_r = 0.5`` and ``delta = 1/n`` as in §7.2.  The expected shape
    is a U: very small ``c`` degrades TEA+ toward Monte-Carlo (many walks),
    very large ``c`` makes the push phase dominate.
    """
    generator = ensure_rng(rng)
    rows: list[dict[str, Any]] = []
    for dataset in datasets:
        graph = load_dataset(dataset)
        seeds = sample_seed_nodes(graph, num_seeds, rng=generator)
        for c in c_values:
            params = HKPRParams(delta=1.0 / graph.num_nodes, c=c)
            elapsed_total = 0.0
            work_total = 0
            walks_total = 0
            for seed_node in seeds:
                result = tea_plus(
                    graph, seed_node, params, rng=generator, max_walks=walk_cap
                )
                elapsed_total += result.elapsed_seconds
                work_total += result.counters.total_work
                walks_total += result.counters.random_walks
            rows.append(
                {
                    "dataset": dataset,
                    "c": c,
                    "avg_seconds": elapsed_total / len(seeds),
                    "avg_total_work": work_total / len(seeds),
                    "avg_random_walks": walks_total / len(seeds),
                }
            )
    return rows


# --------------------------------------------------------------------- #
# Figure 3: TEA vs TEA+ across eps_r
# --------------------------------------------------------------------- #
def figure3_tea_vs_teaplus(
    datasets: tuple[str, ...] = QUICK_DATASETS,
    *,
    eps_r_values: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9),
    delta: float | None = None,
    num_seeds: int = 3,
    walk_cap: int = DEFAULT_WALK_CAP,
    rng: RandomState = 11,
) -> list[dict[str, Any]]:
    """Running time of TEA vs TEA+ as ``eps_r`` varies (Figure 3).

    Expected shape: TEA+ is faster everywhere, with the gap widening as
    ``eps_r`` grows (the residue reduction and early exit bite harder when
    the error budget is loose).
    """
    generator = ensure_rng(rng)
    rows: list[dict[str, Any]] = []
    for dataset in datasets:
        graph = load_dataset(dataset)
        effective_delta = delta if delta is not None else 1.0 / graph.num_nodes
        seeds = sample_seed_nodes(graph, num_seeds, rng=generator)
        for eps_r in eps_r_values:
            params = HKPRParams(eps_r=eps_r, delta=effective_delta)
            configs = [
                MethodConfig(
                    method="tea",
                    label="tea",
                    params=params,
                    estimator_kwargs={
                        "max_walks": walk_cap,
                        "max_pushes": DEFAULT_PUSH_CAP,
                    },
                ),
                MethodConfig(
                    method="tea+",
                    label="tea+",
                    params=params,
                    estimator_kwargs={"max_walks": walk_cap},
                ),
            ]
            records = run_query_set(
                graph, seeds, configs, dataset=dataset, params=params, rng=generator
            )
            for row in aggregate(records):
                row["eps_r"] = eps_r
                rows.append(row)
    return rows


# --------------------------------------------------------------------- #
# Figures 4 and 5: time / memory vs conductance
# --------------------------------------------------------------------- #
def figure4_time_quality(
    datasets: tuple[str, ...] = QUICK_DATASETS,
    *,
    num_seeds: int = 3,
    walk_cap: int = DEFAULT_WALK_CAP,
    include_flow_methods: bool = True,
    rng: RandomState = 13,
) -> list[dict[str, Any]]:
    """Running time vs cluster conductance for all methods (Figure 4)."""
    generator = ensure_rng(rng)
    rows: list[dict[str, Any]] = []
    for dataset in datasets:
        graph = load_dataset(dataset)
        seeds = sample_seed_nodes(graph, num_seeds, rng=generator)
        configs = default_method_sweeps(
            graph.num_nodes,
            walk_cap=walk_cap,
            include_flow_methods=include_flow_methods and dataset in ("dblp-sim", "youtube-sim"),
        )
        records = run_query_set(graph, seeds, configs, dataset=dataset, rng=generator)
        rows.extend(aggregate(records))
    return rows


def figure5_memory(
    datasets: tuple[str, ...] = QUICK_DATASETS,
    *,
    num_seeds: int = 3,
    walk_cap: int = DEFAULT_WALK_CAP,
    rng: RandomState = 17,
) -> list[dict[str, Any]]:
    """Memory proxy (graph + working entries) vs conductance (Figure 5).

    Expected shape: the graph storage dominates, so all HKPR methods are
    roughly comparable.
    """
    generator = ensure_rng(rng)
    rows: list[dict[str, Any]] = []
    for dataset in datasets:
        graph = load_dataset(dataset)
        seeds = sample_seed_nodes(graph, num_seeds, rng=generator)
        configs = default_method_sweeps(graph.num_nodes, walk_cap=walk_cap)
        records = run_query_set(graph, seeds, configs, dataset=dataset, rng=generator)
        for row in aggregate(records):
            row["graph_entries"] = graph.num_nodes + 2 * graph.num_edges
            rows.append(row)
    return rows


# --------------------------------------------------------------------- #
# Figure 6: ranking accuracy (NDCG) of normalized HKPR
# --------------------------------------------------------------------- #
def figure6_ndcg(
    datasets: tuple[str, ...] = ("dblp-sim", "grid3d-sim"),
    *,
    num_seeds: int = 3,
    walk_cap: int = DEFAULT_WALK_CAP,
    rng: RandomState = 19,
) -> list[dict[str, Any]]:
    """NDCG of each estimator's normalized-HKPR ranking vs its running time
    (Figure 6).  Ground truth comes from the power method (``exact_hkpr``)."""
    generator = ensure_rng(rng)
    rows: list[dict[str, Any]] = []
    for dataset in datasets:
        graph = load_dataset(dataset)
        seeds = sample_seed_nodes(graph, num_seeds, rng=generator)
        ground_truth = {
            seed_node: exact_hkpr(graph, seed_node, HKPRParams()).to_dense(graph)
            for seed_node in seeds
        }
        configs = default_method_sweeps(graph.num_nodes, walk_cap=walk_cap)
        for config in configs:
            total_seconds = 0.0
            total_ndcg = 0.0
            for seed_node in seeds:
                start = time.perf_counter()
                estimate = estimate_hkpr_only(
                    graph, seed_node, config, rng=generator
                )
                total_seconds += time.perf_counter() - start
                total_ndcg += ndcg_of_estimate(
                    graph, estimate, ground_truth[seed_node], k=100
                )
            rows.append(
                {
                    "dataset": dataset,
                    "label": config.display_name(),
                    "method": config.method,
                    "avg_seconds": total_seconds / len(seeds),
                    "avg_ndcg": total_ndcg / len(seeds),
                }
            )
    return rows


# --------------------------------------------------------------------- #
# Table 8: clusters vs ground-truth communities
# --------------------------------------------------------------------- #
def table8_ground_truth(
    *,
    num_seeds: int = 10,
    walk_cap: int = DEFAULT_WALK_CAP,
    t_values: tuple[float, ...] = (3.0, 5.0, 10.0),
    rng: RandomState = 23,
    community_dataset: str = "communities-sim",
) -> list[dict[str, Any]]:
    """Best average F1 against ground-truth communities, per method (Table 8).

    For each method the driver sweeps the heat constant ``t`` and the
    method's accuracy knob, reports the best average F1 achieved, and the
    average running time of that best setting — exactly the Table-8 protocol.
    """
    generator = ensure_rng(rng)
    graph, communities = load_community_dataset(community_dataset)
    seeds = communities.sample_seeds(
        num_seeds, min_community_size=10, seed=generator
    )
    base_delta = 1.0 / graph.num_nodes

    method_grids: dict[str, list[MethodConfig]] = {}
    for t in t_values:
        for delta_scale in (1.0, 0.2):
            params = HKPRParams(t=t, delta=base_delta * delta_scale)
            for method in ("monte-carlo", "tea", "tea+"):
                if method == "monte-carlo":
                    kwargs = {"num_walks": walk_cap}
                elif method == "tea":
                    kwargs = {"max_walks": walk_cap, "max_pushes": DEFAULT_PUSH_CAP}
                else:
                    kwargs = {"max_walks": walk_cap}
                method_grids.setdefault(method, []).append(
                    MethodConfig(
                        method=method,
                        label=f"{method}(t={t:g},delta={params.delta:.1e})",
                        params=params,
                        estimator_kwargs=kwargs,
                    )
                )
        for eps_a in (1e-3, 1e-4):
            method_grids.setdefault("hk-relax", []).append(
                MethodConfig(
                    method="hk-relax",
                    label=f"hk-relax(t={t:g},eps_a={eps_a:.0e})",
                    params=HKPRParams(t=t, delta=base_delta),
                    estimator_kwargs={"eps_a": eps_a},
                )
            )
        for eps in (0.2, 0.1):
            method_grids.setdefault("cluster-hkpr", []).append(
                MethodConfig(
                    method="cluster-hkpr",
                    label=f"cluster-hkpr(t={t:g},eps={eps:g})",
                    params=HKPRParams(t=t, delta=base_delta),
                    estimator_kwargs={"eps": eps, "num_walks": walk_cap},
                )
            )

    rows: list[dict[str, Any]] = []
    for method, configs in method_grids.items():
        best_f1 = -1.0
        best_row: dict[str, Any] = {}
        for config in configs:
            f1_total = 0.0
            seconds_total = 0.0
            for seed_node in seeds:
                outcome = local_cluster(
                    graph,
                    seed_node,
                    method=config.method,
                    params=config.params,
                    rng=generator,
                    estimator_kwargs=config.resolved_kwargs(),
                )
                f1_total += cluster_f1(outcome.cluster, seed_node, communities)
                seconds_total += outcome.elapsed_seconds
            avg_f1 = f1_total / len(seeds)
            if avg_f1 > best_f1:
                best_f1 = avg_f1
                best_row = {
                    "method": method,
                    "best_label": config.display_name(),
                    "avg_f1": avg_f1,
                    "avg_seconds": seconds_total / len(seeds),
                }
        rows.append(best_row)
    rows.sort(key=lambda row: -row["avg_f1"])
    return rows


# --------------------------------------------------------------------- #
# Figure 7: sensitivity to subgraph density
# --------------------------------------------------------------------- #
def figure7_density(
    datasets: tuple[str, ...] = ("dblp-sim", "orkut-sim"),
    *,
    seeds_per_stratum: int = 3,
    walk_cap: int = DEFAULT_WALK_CAP,
    rng: RandomState = 29,
) -> list[dict[str, Any]]:
    """Time vs conductance for seed sets of high / medium / low subgraph
    density (Figure 7).  Expected shape: high-density seeds give lower
    conductance and faster push-based methods."""
    generator = ensure_rng(rng)
    rows: list[dict[str, Any]] = []
    for dataset in datasets:
        graph = load_dataset(dataset)
        strata = sample_density_stratified_seeds(
            graph, seeds_per_stratum=seeds_per_stratum, seed=generator
        )
        configs = default_method_sweeps(
            graph.num_nodes,
            walk_cap=walk_cap,
            delta_values=(0.2 / graph.num_nodes,),
            eps_a_values=(5e-4,),
            eps_values=(0.2,),
        )
        for stratum_name, seeds in strata.as_dict().items():
            if not seeds:
                continue
            records = run_query_set(
                graph, seeds, configs, dataset=dataset, rng=generator
            )
            for row in aggregate(records):
                row["stratum"] = stratum_name
                rows.append(row)
    return rows


# --------------------------------------------------------------------- #
# Figures 8 & 9: effect of the heat constant t
# --------------------------------------------------------------------- #
def figure8_9_heat(
    datasets: tuple[str, ...] = ("dblp-sim", "plc-sim"),
    *,
    t_values: tuple[float, ...] = (5.0, 10.0, 20.0, 40.0),
    num_seeds: int = 3,
    walk_cap: int = DEFAULT_WALK_CAP,
    rng: RandomState = 31,
) -> list[dict[str, Any]]:
    """Running time and conductance as the heat constant grows (Figures 8-9).

    Expected shape: every method slows down with ``t``; conductance improves;
    TEA+'s advantage over HK-Relax grows with ``t`` (HK-Relax carries the
    ``e^t`` factor)."""
    generator = ensure_rng(rng)
    rows: list[dict[str, Any]] = []
    for dataset in datasets:
        graph = load_dataset(dataset)
        seeds = sample_seed_nodes(graph, num_seeds, rng=generator)
        for t in t_values:
            params = HKPRParams(t=t, delta=1.0 / graph.num_nodes)
            configs = [
                MethodConfig(
                    method="monte-carlo",
                    label="monte-carlo",
                    params=params,
                    estimator_kwargs={"num_walks": walk_cap},
                ),
                MethodConfig(
                    method="hk-relax",
                    label="hk-relax",
                    params=params,
                    estimator_kwargs={"eps_a": 5e-4},
                ),
                MethodConfig(
                    method="tea",
                    label="tea",
                    params=params,
                    estimator_kwargs={
                        "max_walks": walk_cap,
                        "max_pushes": DEFAULT_PUSH_CAP,
                    },
                ),
                MethodConfig(
                    method="tea+",
                    label="tea+",
                    params=params,
                    estimator_kwargs={"max_walks": walk_cap},
                ),
            ]
            records = run_query_set(
                graph, seeds, configs, dataset=dataset, params=params, rng=generator
            )
            for row in aggregate(records):
                row["t"] = t
                rows.append(row)
    return rows


# --------------------------------------------------------------------- #
# Ablation study (beyond the paper, DESIGN.md §6)
# --------------------------------------------------------------------- #
def ablation_tea_plus(
    datasets: tuple[str, ...] = QUICK_DATASETS,
    *,
    num_seeds: int = 3,
    walk_cap: int = 50_000,
    rng: RandomState = 37,
) -> list[dict[str, Any]]:
    """TEA+ with each optimization disabled, to quantify its contribution."""
    generator = ensure_rng(rng)
    variants = {
        "tea+(full)": {"apply_residue_reduction": True, "apply_offset": True},
        "tea+(no residue reduction)": {
            "apply_residue_reduction": False,
            "apply_offset": False,
        },
        "tea+(no offset)": {"apply_residue_reduction": True, "apply_offset": False},
    }
    rows: list[dict[str, Any]] = []
    for dataset in datasets:
        graph = load_dataset(dataset)
        seeds = sample_seed_nodes(graph, num_seeds, rng=generator)
        params = HKPRParams(delta=0.1 / graph.num_nodes)
        # A constrained push budget leaves residue mass after HK-Push+, so the
        # walk phase (whose cost the residue reduction targets) actually runs.
        push_budget = 2_000
        ground_truth = {
            seed_node: exact_hkpr(graph, seed_node, params).to_dense(graph)
            for seed_node in seeds
        }
        for label, switches in variants.items():
            seconds_total = 0.0
            walks_total = 0
            alpha_total = 0.0
            ndcg_total = 0.0
            for seed_node in seeds:
                # A per-seed (variant-independent) RNG keeps the walk
                # randomness identical across variants, so differences are
                # attributable to the ablated optimization alone.
                result = tea_plus(
                    graph,
                    seed_node,
                    params,
                    rng=1_000_003 * (seed_node + 1),
                    max_walks=walk_cap,
                    push_budget=push_budget,
                    **switches,
                )
                seconds_total += result.elapsed_seconds
                walks_total += result.counters.random_walks
                alpha_total += result.counters.extras.get("alpha", 0.0)
                ndcg_total += ndcg_of_estimate(
                    graph, result, ground_truth[seed_node], k=100
                )
            rows.append(
                {
                    "dataset": dataset,
                    "variant": label,
                    "avg_seconds": seconds_total / len(seeds),
                    "avg_random_walks": walks_total / len(seeds),
                    "avg_residual_alpha": alpha_total / len(seeds),
                    "avg_ndcg": ndcg_total / len(seeds),
                }
            )
    return rows


# --------------------------------------------------------------------- #
# Expected-shape checks shared by benchmarks and tests
# --------------------------------------------------------------------- #
def speedup_summary(rows: list[dict[str, Any]], fast_method: str, slow_method: str) -> float:
    """Average speedup of ``fast_method`` over ``slow_method`` across datasets."""
    fast = [row["avg_seconds"] for row in rows if row.get("method") == fast_method]
    slow = [row["avg_seconds"] for row in rows if row.get("method") == slow_method]
    if not fast or not slow:
        return float("nan")
    return float(np.mean(slow) / max(np.mean(fast), 1e-12))
