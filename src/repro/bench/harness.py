"""Query runners shared by every experiment driver.

The paper's evaluation always has the same inner loop: pick a set of seed
nodes, run one or more methods with one or more parameter settings on each
seed, and record running time, cluster conductance, memory proxy, and (when
ground truth is available) accuracy.  This module provides that inner loop
so the per-figure drivers in :mod:`repro.bench.experiments` stay small.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any

from repro.clustering.local import local_cluster
from repro.clustering.sweep import sweep_cut
from repro.estimators import resolve
from repro.exceptions import ParameterError
from repro.graph.graph import Graph
from repro.hkpr import backend_estimator_kwargs
from repro.hkpr.params import HKPRParams, default_delta
from repro.utils.rng import RandomState, ensure_rng


@dataclass
class MethodConfig:
    """One (method, parameter setting) combination to evaluate.

    ``method`` is any name (or alias) registered in the unified estimator
    registry (:mod:`repro.estimators`).  ``estimator_kwargs`` is forwarded
    to the estimator; ``params`` overrides the experiment-wide
    :class:`HKPRParams` when a sweep varies them.  ``backend`` selects the
    walk execution engine (see :mod:`repro.engine`) for estimators with a
    walk phase; ``None`` uses the process default.
    """

    method: str
    label: str = ""
    params: HKPRParams | None = None
    estimator_kwargs: dict[str, Any] = field(default_factory=dict)
    backend: str | None = None

    def display_name(self) -> str:
        """Label used in reports (method name plus the swept setting)."""
        return self.label or self.method

    def resolved_kwargs(self) -> dict[str, Any]:
        """``estimator_kwargs`` with the backend selection folded in."""
        return backend_estimator_kwargs(self.method, self.backend, self.estimator_kwargs)


@dataclass
class QueryRecord:
    """The measurements of one (dataset, method, seed) query."""

    dataset: str
    method: str
    label: str
    seed_node: int
    elapsed_seconds: float
    conductance: float
    cluster_size: int
    total_work: int
    memory_entries: int
    extras: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """Flatten to a plain dictionary (used by the reporting helpers)."""
        row: dict[str, Any] = {
            "dataset": self.dataset,
            "method": self.method,
            "label": self.label,
            "seed_node": self.seed_node,
            "elapsed_seconds": self.elapsed_seconds,
            "conductance": self.conductance,
            "cluster_size": self.cluster_size,
            "total_work": self.total_work,
            "memory_entries": self.memory_entries,
        }
        row.update(self.extras)
        return row


def _effective_params(spec, graph: Graph, config: MethodConfig, params):
    """The :class:`HKPRParams` to use for one query, or ``None``.

    Experiment drivers pass one experiment-wide ``params`` to *every*
    config in a sweep; methods outside the HKPR-params convention (nibble,
    mc-ppr, ...) simply don't receive it.  A ``config.params`` set
    explicitly on such a method is kept, so the estimator raises its clear
    "does not take HKPRParams" error instead of silently dropping it.
    """
    if not spec.accepts_params_object:
        return config.params
    effective = config.params or params
    if effective is None:
        effective = HKPRParams(delta=default_delta(graph))
    return effective


def sample_seed_nodes(
    graph: Graph,
    count: int,
    *,
    rng: RandomState = None,
    min_degree: int = 1,
) -> list[int]:
    """Sample ``count`` distinct seed nodes uniformly among nodes with
    degree at least ``min_degree`` (the paper samples seeds uniformly)."""
    generator = ensure_rng(rng)
    candidates = [v for v in graph.nodes() if graph.degree(v) >= min_degree]
    if not candidates:
        raise ParameterError(f"no nodes with degree >= {min_degree}")
    count = min(count, len(candidates))
    picks = generator.choice(len(candidates), size=count, replace=False)
    return [candidates[int(i)] for i in picks]


def run_clustering_query(
    graph: Graph,
    seed_node: int,
    config: MethodConfig,
    *,
    dataset: str = "",
    params: HKPRParams | None = None,
    rng: RandomState = None,
) -> QueryRecord:
    """Run one local clustering query and collect its measurements.

    ``config.method`` is resolved through the unified estimator registry
    (:mod:`repro.estimators`): sweepable methods run the full
    estimate-and-sweep pipeline via :func:`local_cluster`, flow-based
    baselines (``simple-local``, ``crd``) run their own clustering entry
    point — the registry's capability flags decide, with no harness-level
    method table.
    """
    spec = resolve(config.method)
    method = spec.name

    if not spec.sweepable:
        start = time.perf_counter()
        outcome = spec.cluster(graph, seed_node, **config.estimator_kwargs)
        elapsed = time.perf_counter() - start
        return QueryRecord(
            dataset=dataset,
            method=method,
            label=config.display_name(),
            seed_node=seed_node,
            elapsed_seconds=elapsed,
            conductance=outcome.conductance,
            cluster_size=outcome.size,
            total_work=outcome.work,
            memory_entries=outcome.size,
            extras={},
        )

    effective_params = _effective_params(spec, graph, config, params)
    outcome = local_cluster(
        graph,
        seed_node,
        method=method,
        params=effective_params,
        rng=rng,
        estimator_kwargs=config.resolved_kwargs(),
    )
    counters = outcome.hkpr.counters
    # Figure-5 memory proxy: graph storage (n + 2m ids) plus working entries.
    memory_entries = (
        graph.num_nodes + 2 * graph.num_edges + counters.memory_entries()
    )
    return QueryRecord(
        dataset=dataset,
        method=method,
        label=config.display_name(),
        seed_node=seed_node,
        elapsed_seconds=outcome.elapsed_seconds,
        conductance=outcome.conductance,
        cluster_size=outcome.size,
        total_work=counters.total_work,
        memory_entries=memory_entries,
        extras={
            "push_operations": float(counters.push_operations),
            "random_walks": float(counters.random_walks),
            "walk_steps": float(counters.walk_steps),
            "hkpr_support": float(outcome.hkpr.support_size()),
            "early_exit": float(outcome.hkpr.early_exit),
            "backend": counters.extras.get("backend", ""),
        },
    )


def run_query_set(
    graph: Graph,
    seeds: list[int],
    configs: list[MethodConfig],
    *,
    dataset: str = "",
    params: HKPRParams | None = None,
    rng: RandomState = None,
) -> list[QueryRecord]:
    """Run every config on every seed and return the flat record list."""
    generator = ensure_rng(rng)
    records: list[QueryRecord] = []
    for config in configs:
        for seed_node in seeds:
            records.append(
                run_clustering_query(
                    graph,
                    seed_node,
                    config,
                    dataset=dataset,
                    params=params,
                    rng=generator,
                )
            )
    return records


def estimate_hkpr_only(
    graph: Graph,
    seed_node: int,
    config: MethodConfig,
    *,
    params: HKPRParams | None = None,
    rng: RandomState = None,
):
    """Run only the HKPR estimation (no sweep); used by the NDCG experiment.

    Restricted to HKPR-family methods: the NDCG experiment scores rankings
    against exact-HKPR ground truth, so a PPR or lazy-walk vector here
    would produce a meaningless row rather than an error.
    """
    spec = resolve(config.method)
    if spec.family != "hkpr" or not spec.sweepable:
        raise ParameterError(f"method {spec.name!r} is not an HKPR estimator")
    effective_params = _effective_params(spec, graph, config, params)
    return spec.estimate(
        graph,
        seed_node,
        params=effective_params,
        rng=rng,
        estimator_kwargs=config.estimator_kwargs,
        backend=config.backend,
    )


def aggregate(
    records: list[QueryRecord], keys: tuple[str, ...] = ("dataset", "label")
) -> list[dict[str, Any]]:
    """Average the numeric fields of records grouped by ``keys``."""
    groups: dict[tuple, list[QueryRecord]] = {}
    for record in records:
        group_key = tuple(getattr(record, key, record.extras.get(key)) for key in keys)
        groups.setdefault(group_key, []).append(record)

    rows: list[dict[str, Any]] = []
    for group_key, members in groups.items():
        row: dict[str, Any] = dict(zip(keys, group_key, strict=True))
        row["queries"] = len(members)
        row["avg_seconds"] = statistics.fmean(m.elapsed_seconds for m in members)
        row["avg_conductance"] = statistics.fmean(m.conductance for m in members)
        row["avg_cluster_size"] = statistics.fmean(m.cluster_size for m in members)
        row["avg_total_work"] = statistics.fmean(m.total_work for m in members)
        row["avg_memory_entries"] = statistics.fmean(m.memory_entries for m in members)
        row["method"] = members[0].method
        rows.append(row)
    rows.sort(key=lambda r: tuple(str(r[k]) for k in keys))
    return rows


def sweep_cut_conductance(graph: Graph, hkpr_result) -> float:
    """Convenience: conductance of the sweep cut of an HKPR result."""
    return sweep_cut(graph, hkpr_result).conductance
