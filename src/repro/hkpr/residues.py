"""Per-hop residue vectors shared by HK-Push, HK-Push+, TEA and TEA+.

Because heat kernel random walks are non-Markovian, residue mass produced at
different hop counts cannot be merged (unlike FORA-style PPR push).  The
push algorithms therefore maintain one sparse residue vector per hop,
``r_s^(0), r_s^(1), ...``.  :class:`ResidueVectors` stores them as a list of
dictionaries and provides the aggregate quantities the algorithms need:

* total residue mass ``alpha`` (walk budget scaling in TEA/TEA+),
* the per-hop maximum of ``r^(k)[u] / d(u)`` (the Theorem-2 early-exit test),
* the flattened non-zero entries (alias-table construction),
* the residue reduction of TEA+ (Algorithm 5, Lines 8-11).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.exceptions import ParameterError
from repro.graph.graph import Graph


class ResidueVectors:
    """Sparse per-hop residue vectors ``r_s^(k)[u]``."""

    def __init__(self, max_hop: int | None = None) -> None:
        self._layers: list[dict[int, float]] = []
        self._max_hop = max_hop

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def _ensure_layer(self, hop: int) -> dict[int, float]:
        if hop < 0:
            raise ParameterError(f"hop must be non-negative, got {hop}")
        if self._max_hop is not None and hop > self._max_hop:
            raise ParameterError(
                f"hop {hop} exceeds the configured maximum hop {self._max_hop}"
            )
        while len(self._layers) <= hop:
            self._layers.append({})
        return self._layers[hop]

    def get(self, hop: int, node: int) -> float:
        """Residue of ``node`` at hop ``hop`` (0.0 when absent)."""
        if hop < 0 or hop >= len(self._layers):
            return 0.0
        return self._layers[hop].get(node, 0.0)

    def set(self, hop: int, node: int, value: float) -> None:
        """Set the residue of ``node`` at hop ``hop`` (dropping exact zeros)."""
        layer = self._ensure_layer(hop)
        if value == 0.0:
            layer.pop(node, None)
        else:
            layer[node] = value

    def add(self, hop: int, node: int, delta: float) -> float:
        """Add ``delta`` to the residue and return the new value."""
        layer = self._ensure_layer(hop)
        new_value = layer.get(node, 0.0) + delta
        if new_value == 0.0:
            layer.pop(node, None)
        else:
            layer[node] = new_value
        return new_value

    def clear(self, hop: int, node: int) -> float:
        """Zero the residue of ``node`` at hop ``hop`` and return the old value."""
        if hop < 0 or hop >= len(self._layers):
            return 0.0
        return self._layers[hop].pop(node, 0.0)

    def layer(self, hop: int) -> dict[int, float]:
        """The residue dictionary at ``hop`` (possibly empty; do not mutate)."""
        if hop < 0 or hop >= len(self._layers):
            return {}
        return self._layers[hop]

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    @property
    def num_hops(self) -> int:
        """Number of hop layers currently allocated."""
        return len(self._layers)

    def max_nonzero_hop(self) -> int:
        """Largest hop with a non-zero residue (the paper's ``K``); -1 if none."""
        for hop in range(len(self._layers) - 1, -1, -1):
            if self._layers[hop]:
                return hop
        return -1

    def total(self) -> float:
        """Total residue mass ``alpha = sum_k sum_u r^(k)[u]``."""
        return sum(sum(layer.values()) for layer in self._layers)

    def nonzero_entries(self) -> Iterator[tuple[int, int, float]]:
        """Yield ``(hop, node, residue)`` for every non-zero entry."""
        for hop, layer in enumerate(self._layers):
            for node, value in layer.items():
                if value > 0.0:
                    yield hop, node, value

    def num_nonzero(self) -> int:
        """Number of non-zero residue entries across all hops."""
        return sum(len(layer) for layer in self._layers)

    def max_normalized_sum(self, graph: Graph) -> float:
        """``sum_k max_u r^(k)[u] / d(u)`` — the Theorem-2 / early-exit quantity."""
        total = 0.0
        for layer in self._layers:
            best = 0.0
            for node, value in layer.items():
                degree = graph.degree(node)
                if degree > 0:
                    normalized = value / degree
                    if normalized > best:
                        best = normalized
            total += best
        return total

    def per_hop_sums(self) -> list[float]:
        """Total residue per hop (used to compute TEA+'s ``beta_k``)."""
        return [sum(layer.values()) for layer in self._layers]

    # ------------------------------------------------------------------ #
    # TEA+ residue reduction (Algorithm 5, Lines 8-11)
    # ------------------------------------------------------------------ #
    def reduce_residues(self, graph: Graph, eps_r: float, delta: float) -> list[float]:
        """Apply TEA+'s residue reduction in place and return the ``beta_k`` used.

        Each residue ``r^(k)[u]`` is decreased by ``beta_k * eps_r * delta * d(u)``
        (floored at zero), where ``beta_k`` is the hop's share of the total
        residue mass.  The betas sum to one, which bounds the induced
        absolute error by ``eps_r * delta`` per unit degree (§5.2).
        """
        per_hop = self.per_hop_sums()
        grand_total = sum(per_hop)
        if grand_total <= 0.0:
            return [0.0] * len(per_hop)
        betas = [hop_sum / grand_total for hop_sum in per_hop]
        for hop, beta in enumerate(betas):
            if beta == 0.0:
                continue
            layer = self._layers[hop]
            reduction_per_degree = beta * eps_r * delta
            for node in list(layer.keys()):
                reduced = layer[node] - reduction_per_degree * graph.degree(node)
                if reduced > 0.0:
                    layer[node] = reduced
                else:
                    del layer[node]
        return betas

    def copy(self) -> "ResidueVectors":
        """Deep copy (used by tests and the ablation benchmarks)."""
        out = ResidueVectors(self._max_hop)
        out._layers = [dict(layer) for layer in self._layers]
        return out
