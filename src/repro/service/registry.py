"""The graph registry: load each graph once, keep its hot state warm.

A cold CLI query pays graph construction (file parse or generator run, CSR
build) plus ``PoissonWeights`` table construction on every call.  The
registry amortizes all of it across the lifetime of the server:

* graphs are registered once — from the built-in benchmark surrogates, an
  edge-list file, or a generator spec string — and their CSR arrays stay
  resident;
* per-``(graph, t)`` :class:`~repro.hkpr.poisson.PoissonWeights` objects are
  cached, so the stop-probability table every heat kernel walk reads is
  built once per heat constant rather than once per request (weights are
  graph-independent, but scoping the cache per registry keeps lifetimes
  obvious);
* a per-graph metadata dict (n, m, average degree) is precomputed for the
  ``/graphs`` endpoint and response envelopes.

Generator specs are strings like ``"chung-lu,n=20000,gamma=2.5,seed=11"``
(also ``powerlaw-cluster``, ``grid3d``, ``erdos-renyi``) so a server can be
started on a synthetic graph from the command line without writing files.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.datasets import DATASETS, load_dataset
from repro.exceptions import ServiceError
from repro.graph import generators
from repro.graph.binfmt import read_graph_binary, sniff
from repro.graph.graph import Graph
from repro.graph.io import load_edge_list
from repro.hkpr.poisson import PoissonWeights

#: Generator spec name -> (builder, per-parameter caster).  Every parameter
#: is optional except ``n`` (``grid3d`` takes a side length instead).
_GENERATOR_SPECS = {
    "chung-lu": "_build_chung_lu",
    "powerlaw-cluster": "_build_powerlaw_cluster",
    "grid3d": "_build_grid3d",
    "erdos-renyi": "_build_erdos_renyi",
}


def _build_chung_lu(params: dict[str, float]) -> Graph:
    n = int(params.pop("n", 10_000))
    gamma = float(params.pop("gamma", 2.5))
    min_degree = int(params.pop("min_degree", 2))
    max_degree = int(params.pop("max_degree", max(min_degree + 1, int(n**0.5))))
    seed = int(params.pop("seed", 0))
    degrees = generators.power_law_degree_sequence(
        n, gamma, min_degree, max_degree, seed=seed
    )
    return generators.chung_lu_graph(degrees, seed=seed, connected=False)


def _build_powerlaw_cluster(params: dict[str, float]) -> Graph:
    n = int(params.pop("n", 5_000))
    m = int(params.pop("m", 5))
    p = float(params.pop("p", 0.3))
    seed = int(params.pop("seed", 0))
    return generators.powerlaw_cluster_graph(n, m, p, seed=seed)


def _build_grid3d(params: dict[str, float]) -> Graph:
    side = int(params.pop("side", 12))
    return generators.grid_3d_graph(side, side, side, periodic=True)


def _build_erdos_renyi(params: dict[str, float]) -> Graph:
    n = int(params.pop("n", 5_000))
    p = float(params.pop("p", 2.0 / max(n - 1, 1)))
    seed = int(params.pop("seed", 0))
    return generators.erdos_renyi_graph(n, p, seed=seed, connected=True)


def build_from_spec(spec: str) -> Graph:
    """Build a graph from a ``"name,key=value,..."`` generator spec string."""
    parts = [piece.strip() for piece in spec.split(",") if piece.strip()]
    if not parts:
        raise ServiceError(f"empty generator spec {spec!r}")
    name, raw_params = parts[0], parts[1:]
    builder_name = _GENERATOR_SPECS.get(name)
    if builder_name is None:
        raise ServiceError(
            f"unknown generator {name!r}; expected one of {sorted(_GENERATOR_SPECS)}"
        )
    params: dict[str, float] = {}
    for raw in raw_params:
        if "=" not in raw:
            raise ServiceError(
                f"generator parameter {raw!r} is not key=value (spec {spec!r})"
            )
        key, value = raw.split("=", 1)
        try:
            params[key.strip()] = float(value)
        except ValueError:
            raise ServiceError(
                f"generator parameter {raw!r} has a non-numeric value"
            ) from None
    builder = globals()[builder_name]
    graph = builder(params)
    if params:
        raise ServiceError(
            f"unknown parameter(s) {sorted(params)} for generator {name!r}"
        )
    return graph


@dataclass
class GraphEntry:
    """One registered graph plus its warm per-graph caches."""

    name: str
    graph: Graph
    source: str
    #: How the CSR arrays are held: ``in-memory`` (built by the caller),
    #: ``generated``, ``edge-list`` (parsed from text), ``binary`` (.rcsr
    #: read eagerly) or ``mmap`` (.rcsr memory-mapped — resident bytes are
    #: page-cache pages shared with other processes).
    storage: str = "in-memory"
    #: Wall-clock seconds spent building / loading the graph.
    load_seconds: float = 0.0
    #: Optional precomputed walk-sketch index (``.rwix``), attached via
    #: :meth:`GraphRegistry.attach_index` after it passes ``verify_graph``.
    index: object | None = None
    _weights: dict[float, PoissonWeights] = field(default_factory=dict)

    def poisson_weights(self, t: float) -> PoissonWeights:
        """The cached ``PoissonWeights`` for heat constant ``t``."""
        weights = self._weights.get(t)
        if weights is None:
            weights = self._weights[t] = PoissonWeights(t)
        return weights

    def describe(self) -> dict:
        """JSON-able summary for the ``/graphs`` endpoint."""
        summary = {
            "name": self.name,
            "source": self.source,
            "storage": self.storage,
            "load_seconds": round(self.load_seconds, 6),
            "csr_bytes": self.graph.csr_nbytes,
            "num_nodes": self.graph.num_nodes,
            "num_edges": self.graph.num_edges,
            "average_degree": round(self.graph.average_degree, 3)
            if self.graph.num_nodes
            else 0.0,
        }
        if self.index is not None:
            summary["index_sketches"] = self.index.num_sketches
        return summary


class GraphRegistry:
    """Thread-safe name -> :class:`GraphEntry` mapping.

    All mutation happens through ``add_*`` methods; lookups after startup
    are lock-protected dictionary reads.  Entries are immutable apart from
    their weight caches, where a concurrent miss may build the same
    ``PoissonWeights`` twice — a benign race (the objects are
    interchangeable and one insert wins).
    """

    def __init__(self) -> None:
        self._entries: dict[str, GraphEntry] = {}
        self._lock = threading.Lock()

    def add_graph(
        self,
        name: str,
        graph: Graph,
        *,
        source: str = "in-memory",
        storage: str = "in-memory",
        load_seconds: float = 0.0,
    ) -> GraphEntry:
        """Register an already-built graph under ``name`` (overwrites)."""
        entry = GraphEntry(
            name=name,
            graph=graph,
            source=source,
            storage=storage,
            load_seconds=load_seconds,
        )
        with self._lock:
            self._entries[name] = entry
        return entry

    def add_dataset(self, dataset: str, *, name: str | None = None) -> GraphEntry:
        """Register one of the built-in benchmark surrogates."""
        if dataset not in DATASETS:
            raise ServiceError(
                f"unknown dataset {dataset!r}; expected one of {sorted(DATASETS)}"
            )
        started = time.perf_counter()
        graph = load_dataset(dataset)
        return self.add_graph(
            name or dataset,
            graph,
            source=f"dataset:{dataset}",
            storage="generated",
            load_seconds=time.perf_counter() - started,
        )

    def add_edge_list(self, path: str | Path, *, name: str | None = None) -> GraphEntry:
        """Register a graph loaded from a whitespace-separated edge list.

        ``.rcsr`` containers are detected by their magic bytes and routed
        to :meth:`add_binary` (memory-mapped), so callers can point any
        graph-path option at either format.
        """
        path = Path(path)
        if sniff(path):
            return self.add_binary(path, name=name)
        started = time.perf_counter()
        graph, _ = load_edge_list(path)
        return self.add_graph(
            name or path.stem,
            graph,
            source=f"edge-list:{path}",
            storage="edge-list",
            load_seconds=time.perf_counter() - started,
        )

    def add_binary(
        self, path: str | Path, *, name: str | None = None, mmap: bool = True
    ) -> GraphEntry:
        """Register an ``.rcsr`` binary CSR graph (memory-mapped by default)."""
        path = Path(path)
        started = time.perf_counter()
        graph = read_graph_binary(path, mmap=mmap)
        return self.add_graph(
            name or path.stem,
            graph,
            source=f"binary:{path}",
            storage="mmap" if mmap else "binary",
            load_seconds=time.perf_counter() - started,
        )

    def add_generated(self, spec: str, *, name: str | None = None) -> GraphEntry:
        """Register a graph built from a generator spec string."""
        started = time.perf_counter()
        graph = build_from_spec(spec)
        return self.add_graph(
            name or spec,
            graph,
            source=f"generated:{spec}",
            storage="generated",
            load_seconds=time.perf_counter() - started,
        )

    def attach_index(
        self, name: str, index: "object | str | Path", *, mmap: bool = True
    ) -> GraphEntry:
        """Attach a walk-sketch index to the graph registered as ``name``.

        ``index`` is a :class:`~repro.index.walk_index.WalkIndex` or a path
        to a ``.rwix`` file (memory-mapped by default).  The index must pass
        the epoch contract (``verify_graph``) against the registered graph —
        a stale or mismatched index raises
        :class:`~repro.exceptions.WalkIndexError` rather than silently
        serving samples from the wrong distribution.
        """
        entry = self.get(name)
        if isinstance(index, (str, Path)):
            from repro.index import WalkIndex

            index = WalkIndex.from_file(index, mmap=mmap)
        index.verify_graph(entry.graph)
        index.metrics_label = name
        entry.index = index
        return entry

    def get(self, name: str) -> GraphEntry:
        """The entry for ``name``; :class:`ServiceError` when unknown."""
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise ServiceError(
                f"unknown graph {name!r}; registered: {self.names()}"
            )
        return entry

    def names(self) -> list[str]:
        """Sorted names of all registered graphs."""
        with self._lock:
            return sorted(self._entries)

    def describe(self) -> list[dict]:
        """JSON-able summaries of every registered graph."""
        with self._lock:
            entries = list(self._entries.values())
        return [entry.describe() for entry in entries]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._entries
