"""Batched (multi-query) PPR entry points built on walk fusion.

The PPR mirror of :mod:`repro.hkpr.batched`: plans decompose FORA and plain
Monte-Carlo PPR into a deterministic prepare step (validation, forward push,
residue sampling) and a fusible geometric-walk phase, so the serving layer
can answer many concurrent PPR queries with shared
``geometric_walk_batch`` calls.  Because PPR walks are memoryless, queries
fuse whenever their restart probability ``alpha`` matches.
"""

from __future__ import annotations

import math
import time
from collections.abc import Sequence

import numpy as np

from repro.engine import Backend, chunk_sizes, execute_plans, get_backend
from repro.engine.fused import FusedQuery
from repro.engine.multi import WalkTask
from repro.exceptions import ParameterError
from repro.graph.graph import Graph
from repro.hkpr.alias import AliasSampler
from repro.hkpr.params import default_delta
from repro.hkpr.result import HKPRResult
from repro.ppr.fora import walk_count
from repro.ppr.push import forward_push
from repro.utils.counters import OperationCounters
from repro.utils.deadline import Deadline
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.sparsevec import SparseVector


class MonteCarloPPRPlan:
    """Plan form of :func:`repro.ppr.fora.monte_carlo_ppr`."""

    method = "mc-ppr"

    def __init__(
        self,
        graph: Graph,
        seed_node: int,
        *,
        alpha: float = 0.15,
        num_walks: int = 10_000,
    ) -> None:
        if not graph.has_node(seed_node):
            raise ParameterError(f"seed node {seed_node} is not in the graph")
        if num_walks < 1:
            raise ParameterError(f"num_walks must be >= 1, got {num_walks}")
        if not 0.0 < alpha < 1.0:
            raise ParameterError(f"alpha must be in (0, 1), got {alpha}")
        self.graph = graph
        self.seed_node = int(seed_node)
        self.counters = OperationCounters()
        self._increment = 1.0 / num_walks
        self._num_walks = int(num_walks)
        self._alpha = float(alpha)
        self._started = time.perf_counter()
        self._tasks: list[WalkTask] | None = None

    @property
    def tasks(self) -> list[WalkTask]:
        """Chunked geometric walk tasks, materialized on first access."""
        if self._tasks is None:
            self._tasks = [
                WalkTask(
                    "geometric",
                    np.full(batch, self.seed_node, dtype=np.int64),
                    alpha=self._alpha,
                )
                for batch in chunk_sizes(self._num_walks)
            ]
        return self._tasks

    def fused_queries(self) -> list[FusedQuery]:
        """Fused form: all walks start at the seed (one unit-weight entry)."""
        return [
            FusedQuery(
                "geometric",
                [self.seed_node],
                [1.0],
                self._num_walks,
                alpha=self._alpha,
            )
        ]

    @property
    def estimated_walks(self) -> int:
        """Walks this query will run (admission-control estimate)."""
        return self._num_walks

    def finalize(self, endpoints: Sequence[np.ndarray]) -> HKPRResult:
        estimates = SparseVector()
        for ends in endpoints:
            estimates.add_many(ends, self._increment)
        self.counters.reserve_entries = estimates.nnz()
        return HKPRResult(
            estimates=estimates,
            seed=self.seed_node,
            method=self.method,
            counters=self.counters,
            elapsed_seconds=time.perf_counter() - self._started,
        )


class ForaPlan:
    """Plan form of :func:`repro.ppr.fora.fora` (forward push + walks)."""

    method = "fora"

    def __init__(
        self,
        graph: Graph,
        seed_node: int,
        *,
        alpha: float = 0.15,
        eps_r: float = 0.5,
        delta: float | None = None,
        p_f: float = 1e-6,
        r_max: float | None = None,
        rng: RandomState = None,
        max_walks: int | None = None,
        deadline: Deadline | None = None,
    ) -> None:
        if not graph.has_node(seed_node):
            raise ParameterError(f"seed node {seed_node} is not in the graph")
        generator = ensure_rng(rng)
        self.graph = graph
        self.seed_node = int(seed_node)
        self._started = time.perf_counter()
        effective_delta = (
            delta if delta is not None else default_delta(graph)
        )
        omega = walk_count(graph, eps_r, effective_delta, p_f)
        if r_max is None:
            m = max(graph.num_edges, 1)
            balanced = math.sqrt(
                eps_r**2 * effective_delta
                / (m * math.log(2.0 * graph.num_nodes / p_f))
            )
            r_max = min(balanced, 1.0 / omega) if omega > 0 else balanced
            r_max = max(r_max, 1e-12)

        counters = OperationCounters()
        counters.extras["omega"] = float(omega)
        self.counters = counters
        push_outcome = forward_push(
            graph, self.seed_node, alpha=alpha, r_max=r_max, counters=counters,
            deadline=deadline,
        )
        self._estimates = push_outcome.reserve
        residue = push_outcome.residue
        self._tasks: list[WalkTask] | None = None
        self._generator = generator
        self._alpha = float(alpha)
        self._num_walks = 0
        self._start_nodes: np.ndarray | None = None
        self._start_values: np.ndarray | None = None
        self._increment = 0.0

        residual_mass = residue.sum()
        counters.extras["alpha_mass"] = residual_mass
        if residual_mass <= 0.0 or residue.nnz() == 0:
            return
        num_walks = int(math.ceil(residual_mass * omega))
        if max_walks is not None:
            num_walks = min(num_walks, max_walks)
        if num_walks <= 0:
            return
        entries = list(residue.items())
        self._start_nodes = np.fromiter(
            (node for node, _ in entries), np.int64, count=len(entries)
        )
        self._start_values = np.fromiter(
            (value for _, value in entries), np.float64, count=len(entries)
        )
        self._num_walks = num_walks
        self._increment = residual_mass / num_walks

    @property
    def tasks(self) -> list[WalkTask]:
        """Alias-sampled geometric walk tasks, materialized on first access
        (drawing from the construction ``rng``; see
        :class:`repro.hkpr.batched.TeaPlusPlan` for the laziness contract)."""
        if self._tasks is None:
            tasks: list[WalkTask] = []
            if self._num_walks:
                sampler = AliasSampler(self._start_nodes, self._start_values)
                for batch in chunk_sizes(self._num_walks):
                    picks = sampler.sample_indices(batch, self._generator)
                    tasks.append(
                        WalkTask(
                            "geometric", self._start_nodes[picks], alpha=self._alpha
                        )
                    )
            self._tasks = tasks
        return self._tasks

    def fused_queries(self) -> list[FusedQuery]:
        """Fused form: the forward-push residue is the start distribution
        (empty when the push settled everything)."""
        if not self._num_walks:
            return []
        return [
            FusedQuery(
                "geometric",
                self._start_nodes,
                self._start_values,
                self._num_walks,
                alpha=self._alpha,
            )
        ]

    @property
    def estimated_walks(self) -> int:
        """Walks this query will run (zero when the push settled everything)."""
        return self._num_walks

    def finalize(self, endpoints: Sequence[np.ndarray]) -> HKPRResult:
        for ends in endpoints:
            self._estimates.add_many(ends, self._increment)
        self.counters.reserve_entries = max(
            self.counters.reserve_entries, self._estimates.nnz()
        )
        return HKPRResult(
            estimates=self._estimates,
            seed=self.seed_node,
            method=self.method,
            counters=self.counters,
            elapsed_seconds=time.perf_counter() - self._started,
        )


def monte_carlo_ppr_many(
    graph: Graph,
    seeds: Sequence[int],
    *,
    alpha: float = 0.15,
    num_walks: int = 10_000,
    rng: RandomState = None,
    backend: str | Backend | None = None,
) -> dict[int, HKPRResult]:
    """Monte-Carlo PPR for every seed in ``seeds``, walks fused per batch.

    Duplicate seeds are answered once (the result mapping is keyed by seed).
    """
    from repro.hkpr.batched import _distinct_seeds

    seeds = _distinct_seeds(seeds)
    generator = ensure_rng(rng)
    engine = get_backend(backend)
    plans = [
        MonteCarloPPRPlan(graph, seed, alpha=alpha, num_walks=num_walks)
        for seed in seeds
    ]
    for plan in plans:
        plan.counters.extras["backend"] = engine.name
    results = execute_plans(engine, graph, plans, generator)
    return {plan.seed_node: result for plan, result in zip(plans, results)}
