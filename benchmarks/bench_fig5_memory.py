"""Figure 5 — memory overhead vs cluster conductance.

Paper shape: memory is dominated by the storage of the input graph, so all
HKPR methods are roughly comparable and the curves are flat; only the
working-set term (reserve + residue entries) differs slightly between
methods.
"""

from __future__ import annotations

from repro.bench.experiments import figure5_memory


def run():
    return figure5_memory(
        datasets=("dblp-sim", "orkut-sim", "grid3d-sim"),
        num_seeds=3,
        rng=17,
    )


def test_figure5_memory_vs_conductance(benchmark, save_table):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(
        "figure5_memory",
        rows,
        columns=[
            "dataset",
            "label",
            "avg_memory_entries",
            "graph_entries",
            "avg_conductance",
        ],
        title="Figure 5: memory proxy (graph + working entries) vs conductance",
    )

    for row in rows:
        # Working memory never exceeds a small multiple of the graph storage:
        # the methods are local, exactly the paper's point.  (On the paper's
        # billion-edge graphs the ratio is essentially 1; on these small
        # surrogates the per-hop residue vectors are relatively larger, so a
        # generous constant is used.)
        assert row["avg_memory_entries"] <= 8.0 * row["graph_entries"]
        assert row["avg_memory_entries"] >= row["graph_entries"]
