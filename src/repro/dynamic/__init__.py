"""Dynamic graphs: epoch-versioned edge mutations with incremental repair.

Two layers:

* :mod:`repro.dynamic.delta` — :class:`DeltaGraph`, a copy-on-write
  adjacency overlay over the immutable CSR :class:`~repro.graph.graph.Graph`
  with monotone epochs, :class:`MutationEvent` records, and bounded-delta
  compaction back to plain CSR.
* :mod:`repro.dynamic.repair` — undo-and-replay repair of cached
  forward-push / HK-Push states, costing O(touched neighborhood) per
  mutation batch instead of a from-scratch recomputation.
"""

from repro.dynamic.delta import (
    DeltaGraph,
    MutationEvent,
    default_compaction_threshold,
)
from repro.dynamic.repair import (
    DynamicHKState,
    DynamicPPRState,
    dynamic_forward_push,
    dynamic_hk_push,
    repair_hk_push,
    repair_ppr_push,
)

__all__ = [
    "DeltaGraph",
    "MutationEvent",
    "default_compaction_threshold",
    "DynamicHKState",
    "DynamicPPRState",
    "dynamic_forward_push",
    "dynamic_hk_push",
    "repair_hk_push",
    "repair_ppr_push",
]
