"""Tests for edge-list IO and NetworkX interoperability."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph.generators import (
    complete_graph,
    path_graph,
    powerlaw_cluster_graph,
)
from repro.graph.graph import Graph
from repro.graph.io import from_networkx, load_edge_list, save_edge_list, to_networkx


class TestEdgeListRoundTrip:
    def test_save_and_load(self, tmp_path, small_ring):
        path = tmp_path / "ring.txt"
        save_edge_list(small_ring, path)
        loaded, labels = load_edge_list(path)
        assert loaded.num_nodes == small_ring.num_nodes
        assert loaded.num_edges == small_ring.num_edges
        assert set(labels) == set(range(10))

    @pytest.mark.parametrize(
        "graph_builder",
        [
            lambda: path_graph(25),
            lambda: complete_graph(9),
        ],
        ids=["path", "complete"],
    )
    def test_round_trip_identical_csr(self, tmp_path, graph_builder):
        """save -> load reproduces the exact CSR arrays.

        On these graphs the edge scan (ascending ``u``, sorted neighbors)
        first sees node ``k`` only after ``0..k-1``, so the loader's
        first-seen compaction is the identity and the CSR layout must match
        array for array.
        """
        graph = graph_builder()
        path = tmp_path / "graph.txt"
        save_edge_list(graph, path)
        loaded, labels = load_edge_list(path)
        assert labels == {node: node for node in range(graph.num_nodes)}
        np.testing.assert_array_equal(loaded.indptr, graph.indptr)
        np.testing.assert_array_equal(loaded.indices, graph.indices)
        np.testing.assert_array_equal(loaded.degrees, graph.degrees)
        assert loaded == graph

    def test_round_trip_identical_csr_after_relabel(self, tmp_path):
        """On an arbitrary graph the round trip is exact up to the returned
        label mapping: relabelling the original through it reproduces the
        loaded CSR arrays byte for byte."""
        graph = powerlaw_cluster_graph(120, 3, 0.4, seed=13)
        path = tmp_path / "plc.txt"
        save_edge_list(graph, path)
        loaded, labels = load_edge_list(path)
        assert loaded.num_nodes == graph.num_nodes
        assert loaded.num_edges == graph.num_edges
        relabelled = Graph(
            graph.num_nodes,
            [(labels[u], labels[v]) for u, v in graph.edges()],
        )
        np.testing.assert_array_equal(loaded.indptr, relabelled.indptr)
        np.testing.assert_array_equal(loaded.indices, relabelled.indices)
        assert loaded == relabelled

    def test_double_round_trip_is_stable(self, tmp_path):
        """Each further save/load reproduces the previous CSR up to its mapping."""
        graph = powerlaw_cluster_graph(80, 4, 0.2, seed=5)
        first = tmp_path / "first.txt"
        save_edge_list(graph, first)
        loaded, _ = load_edge_list(first)
        second = tmp_path / "second.txt"
        save_edge_list(loaded, second)
        reloaded, labels = load_edge_list(second)
        assert reloaded.num_nodes == loaded.num_nodes
        assert reloaded.num_edges == loaded.num_edges
        relabelled = Graph(
            loaded.num_nodes,
            [(labels[u], labels[v]) for u, v in loaded.edges()],
        )
        np.testing.assert_array_equal(reloaded.indptr, relabelled.indptr)
        np.testing.assert_array_equal(reloaded.indices, relabelled.indices)

    def test_load_with_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# a comment\n\n10 20\n20 30\n30 10\n")
        graph, labels = load_edge_list(path)
        assert graph.num_nodes == 3
        assert graph.num_edges == 3
        assert set(labels.keys()) == {10, 20, 30}

    def test_load_drops_duplicates_and_self_loops(self, tmp_path):
        path = tmp_path / "dups.txt"
        path.write_text("1 2\n2 1\n1 1\n2 3\n")
        graph, _ = load_edge_list(path)
        assert graph.num_edges == 2

    def test_load_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1\n")
        with pytest.raises(GraphError):
            load_edge_list(path)

    def test_load_rejects_non_integer(self, tmp_path):
        path = tmp_path / "bad2.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphError):
            load_edge_list(path)


class TestNetworkXConversion:
    def test_round_trip(self, small_complete):
        nx_graph = to_networkx(small_complete)
        back, mapping = from_networkx(nx_graph)
        assert back.num_nodes == small_complete.num_nodes
        assert back.num_edges == small_complete.num_edges
        assert len(mapping) == small_complete.num_nodes

    def test_from_networkx_arbitrary_labels(self):
        nx_graph = nx.Graph()
        nx_graph.add_edges_from([("a", "b"), ("b", "c")])
        graph, mapping = from_networkx(nx_graph)
        assert graph.num_nodes == 3
        assert graph.num_edges == 2
        assert set(mapping.keys()) == {"a", "b", "c"}

    def test_from_networkx_rejects_directed(self):
        with pytest.raises(GraphError):
            from_networkx(nx.DiGraph([(0, 1)]))

    def test_to_networkx_preserves_isolated_nodes(self):
        g = Graph(4, [(0, 1)])
        nx_graph = to_networkx(g)
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 1


class TestStreamingLoader:
    """The chunked edge-list reader (:data:`repro.graph.io._CHUNK_LINES`)."""

    def test_first_seen_label_order(self, tmp_path):
        path = tmp_path / "order.txt"
        path.write_text("10 20\n5 10\n20 5\n")
        _, labels = load_edge_list(path)
        assert labels == {10: 0, 20: 1, 5: 2}

    def test_chunk_boundary_invariance(self, tmp_path, monkeypatch):
        """Results do not depend on where chunk boundaries fall."""
        import repro.graph.io as io_module

        rng = np.random.default_rng(9)
        edges = rng.integers(0, 40, size=(300, 2))
        path = tmp_path / "chunky.txt"
        with path.open("w") as handle:
            for u, v in edges:
                handle.write(f"{u} {v}\n")
        big_graph, big_labels = load_edge_list(path)
        monkeypatch.setattr(io_module, "_CHUNK_LINES", 7)
        small_graph, small_labels = load_edge_list(path)
        assert big_labels == small_labels
        np.testing.assert_array_equal(big_graph.indptr, small_graph.indptr)
        np.testing.assert_array_equal(big_graph.indices, small_graph.indices)

    def test_error_line_numbers_cross_chunks(self, tmp_path, monkeypatch):
        import repro.graph.io as io_module

        monkeypatch.setattr(io_module, "_CHUNK_LINES", 4)
        path = tmp_path / "bad.txt"
        path.write_text("\n".join(["1 2"] * 9 + ["oops"]) + "\n")
        with pytest.raises(GraphError, match=r"bad\.txt:10"):
            load_edge_list(path)

    def test_rejects_labels_beyond_int64(self, tmp_path):
        path = tmp_path / "huge.txt"
        path.write_text(f"1 {2**70}\n")
        with pytest.raises(GraphError, match="64-bit"):
            load_edge_list(path)
