"""Shared helpers for the benchmark suite.

Each ``bench_*`` module regenerates one table or figure of the paper (see
DESIGN.md §4 and EXPERIMENTS.md).  The pytest-benchmark fixture times one
full run of the corresponding experiment driver; the produced rows are also
rendered as a text table and written to ``benchmarks/results/`` so they can
be inspected after the run.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where each benchmark writes its rendered result table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def pytest_sessionfinish(session, exitstatus):
    """Mirror ``BENCH_*.json`` payloads to the repository root.

    The perf-trajectory tracker reads root-level ``BENCH_*.json`` files;
    ``benchmarks/results/`` itself is gitignored (machine-specific tables
    live there too), so the JSON summaries are copied up after every run
    that produced or refreshed one.
    """
    if not RESULTS_DIR.is_dir():
        return
    for payload in sorted(RESULTS_DIR.glob("BENCH_*.json")):
        target = REPO_ROOT / payload.name
        try:
            text = payload.read_text()
            if not target.exists() or target.read_text() != text:
                target.write_text(text)
        except OSError:  # pragma: no cover - read-only checkouts
            pass


@pytest.fixture
def save_table(results_dir):
    """Return a writer that renders rows to text, saves and echoes them."""
    from repro.bench.reporting import format_rows

    def _save(name: str, rows, columns=None, title=None) -> str:
        text = format_rows(rows, columns=columns, title=title)
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return text

    return _save
