"""Batched (multi-query) HKPR entry points built on walk fusion.

Every estimator in this package answers one query at a time.  Online serving
(:mod:`repro.service`) instead sees *many* concurrent queries, and the walk
phases of those queries can share kernel batches (one ``poisson_walk_batch``
call for the walks of every Monte-Carlo query in flight, one ``walk_batch``
call for the residue walks of every TEA+ query) — amortizing the per-level
Python overhead of the level-synchronous kernels across queries.

Two layers:

* **Plans** — :class:`MonteCarloPlan` and :class:`TeaPlusPlan` implement the
  :class:`repro.engine.multi.WalkPlan` shape: the deterministic part of the
  query (validation, HK-Push+, residue reduction, walk-start sampling) runs
  at construction time, the walk phase is exposed as fusible
  :class:`~repro.engine.multi.WalkTask`\\ s, and ``finalize`` assembles the
  :class:`~repro.hkpr.result.HKPRResult`.
* **Batched entry points** — :func:`monte_carlo_hkpr_many` and
  :func:`tea_plus_many` answer a whole seed list with fused walk phases.
  Results are a pure function of ``(rng seed, graph, ordered seed list)``;
  individual per-seed results legitimately differ from single-query runs of
  the same seed (the shared stream is interleaved differently) while
  following the identical distribution — the statistical parity suite is
  the executable statement of that claim.
"""

from __future__ import annotations

import math
import time
from collections.abc import Sequence

import numpy as np

from repro.engine import Backend, chunk_sizes, execute_plans, get_backend
from repro.engine.fused import FusedQuery
from repro.engine.multi import WalkTask
from repro.exceptions import ParameterError
from repro.graph.graph import Graph
from repro.hkpr.alias import AliasSampler
from repro.hkpr.hk_push_plus import hk_push_plus
from repro.hkpr.params import HKPRParams
from repro.hkpr.poisson import PoissonWeights
from repro.hkpr.result import HKPRResult
from repro.utils.counters import OperationCounters
from repro.utils.deadline import Deadline
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.sparsevec import SparseVector


class MonteCarloPlan:
    """Plan form of :func:`repro.hkpr.monte_carlo.monte_carlo_hkpr`.

    The whole estimator is a walk phase, so the plan is one fused-eligible
    Poisson task (chunked by :func:`repro.engine.chunk_sizes`) plus a
    counting ``finalize``.
    """

    method = "monte-carlo"

    def __init__(
        self,
        graph: Graph,
        seed_node: int,
        params: HKPRParams,
        *,
        num_walks: int | None = None,
        weights: PoissonWeights | None = None,
    ) -> None:
        if not graph.has_node(seed_node):
            raise ParameterError(f"seed node {seed_node} is not in the graph")
        walks = num_walks if num_walks is not None else int(
            math.ceil(params.omega_monte_carlo(graph))
        )
        if walks < 1:
            raise ParameterError(f"number of walks must be >= 1, got {walks}")
        self.graph = graph
        self.seed_node = int(seed_node)
        self.counters = OperationCounters()
        self._weights = weights if weights is not None else PoissonWeights(params.t)
        self._increment = 1.0 / walks
        self._num_walks = walks
        self._started = time.perf_counter()
        self._tasks: list[WalkTask] | None = None

    @property
    def tasks(self) -> list[WalkTask]:
        """Chunked Poisson walk tasks, materialized on first access.

        Laziness matters: the fused route (:meth:`fused_queries`) never
        touches the per-chunk start arrays, so it must not pay for them.
        """
        if self._tasks is None:
            self._tasks = [
                WalkTask(
                    "poisson",
                    np.full(batch, self.seed_node, dtype=np.int64),
                    weights=self._weights,
                )
                for batch in chunk_sizes(self._num_walks)
            ]
        return self._tasks

    def fused_queries(self) -> list[FusedQuery]:
        """Fused form: all walks start at the seed (one unit-weight entry)."""
        return [
            FusedQuery(
                "poisson",
                [self.seed_node],
                [1.0],
                self._num_walks,
                weights=self._weights,
            )
        ]

    @property
    def estimated_walks(self) -> int:
        """Walks this query will run (admission-control estimate)."""
        return self._num_walks

    def finalize(self, endpoints: Sequence[np.ndarray]) -> HKPRResult:
        estimates = SparseVector()
        for ends in endpoints:
            estimates.add_many(ends, self._increment)
        self.counters.reserve_entries = estimates.nnz()
        return HKPRResult(
            estimates=estimates,
            seed=self.seed_node,
            method=self.method,
            counters=self.counters,
            elapsed_seconds=time.perf_counter() - self._started,
        )


class TeaPlusPlan:
    """Plan form of :func:`repro.hkpr.tea_plus.tea_plus` (Algorithm 5).

    HK-Push+, the Theorem-2 early-exit test and the §5.2 residue reduction
    run at construction time; the surviving residue entries are kept as the
    walk-start *distribution*.  The unfused route materializes alias-sampled
    :class:`WalkTask`\\ s lazily on first ``tasks`` access (drawing from the
    construction ``rng``); the fused route (:meth:`fused_queries`) hands the
    distribution itself to the kernel, which samples every start in-pass.
    An early exit leaves both empty, making the plan free to "execute".
    """

    method = "tea+"

    def __init__(
        self,
        graph: Graph,
        seed_node: int,
        params: HKPRParams,
        *,
        rng: RandomState = None,
        max_walks: int | None = None,
        apply_residue_reduction: bool = True,
        apply_offset: bool = True,
        push_budget: int | None = None,
        max_hop: int | None = None,
        weights: PoissonWeights | None = None,
        deadline: Deadline | None = None,
    ) -> None:
        if not graph.has_node(seed_node):
            raise ParameterError(f"seed node {seed_node} is not in the graph")
        generator = ensure_rng(rng)
        self.graph = graph
        self.seed_node = int(seed_node)
        self._params = params
        self._started = time.perf_counter()

        self._weights = weights if weights is not None else PoissonWeights(params.t)
        omega = params.omega_tea_plus(graph)
        budget = (
            push_budget if push_budget is not None else params.push_budget_tea_plus(graph)
        )
        hop_cap = max_hop if max_hop is not None else params.max_hop_tea_plus(graph)

        counters = OperationCounters()
        counters.extras["omega"] = omega
        counters.extras["push_budget"] = float(budget)
        counters.extras["max_hop"] = float(hop_cap)
        self.counters = counters

        push_outcome = hk_push_plus(
            graph, self.seed_node, params.eps_r, params.delta,
            hop_cap, budget, self._weights, counters=counters,
            deadline=deadline,
        )
        self._estimates = push_outcome.reserve
        residues = push_outcome.residues
        self._tasks: list[WalkTask] | None = None
        self._generator = generator
        self._num_walks = 0
        self._start_nodes: np.ndarray | None = None
        self._start_hops: np.ndarray | None = None
        self._start_values: np.ndarray | None = None
        self._increment = 0.0

        if residues.max_normalized_sum(graph) <= params.absolute_error_target():
            self.early_exit = True
            self._offset = 0.0
            return
        self.early_exit = False

        if apply_residue_reduction:
            betas = residues.reduce_residues(graph, params.eps_r, params.delta)
            counters.extras["num_reduced_hops"] = float(
                sum(1 for b in betas if b > 0)
            )
        self._offset = (
            params.eps_r * params.delta / 2.0
            if (apply_offset and apply_residue_reduction)
            else 0.0
        )

        entries = list(residues.nonzero_entries())
        alpha = sum(value for _, _, value in entries)
        counters.extras["alpha"] = alpha
        if alpha <= 0.0 or not entries:
            return
        num_walks = int(math.ceil(alpha * omega))
        if max_walks is not None:
            num_walks = min(num_walks, max_walks)
        if num_walks <= 0:
            return

        self._start_nodes = np.fromiter(
            (node for _, node, _ in entries), np.int64, count=len(entries)
        )
        self._start_hops = np.fromiter(
            (hop for hop, _, _ in entries), np.int64, count=len(entries)
        )
        self._start_values = np.fromiter(
            (value for _, _, value in entries), np.float64, count=len(entries)
        )
        self._num_walks = num_walks
        self._increment = alpha / num_walks

    @property
    def tasks(self) -> list[WalkTask]:
        """Alias-sampled walk tasks, materialized on first access.

        Sampling draws from the plan's construction generator, so for the
        shared-generator entry points the draw order is identical to eager
        construction (push phases consume nothing from the stream).  The
        fused route never touches this — start sampling happens inside the
        kernel instead.
        """
        if self._tasks is None:
            tasks: list[WalkTask] = []
            if self._num_walks:
                sampler = AliasSampler(self._start_nodes, self._start_values)
                for batch in chunk_sizes(self._num_walks):
                    picks = sampler.sample_indices(batch, self._generator)
                    tasks.append(
                        WalkTask(
                            "heat",
                            self._start_nodes[picks],
                            hop_offsets=self._start_hops[picks],
                            weights=self._weights,
                        )
                    )
            self._tasks = tasks
        return self._tasks

    def fused_queries(self) -> list[FusedQuery]:
        """Fused form: the residue entries *are* the start distribution.

        Empty after a Theorem-2 early exit (the plan is free to execute).
        """
        if not self._num_walks:
            return []
        return [
            FusedQuery(
                "heat",
                self._start_nodes,
                self._start_values,
                self._num_walks,
                entry_hops=self._start_hops,
                weights=self._weights,
            )
        ]

    @property
    def estimated_walks(self) -> int:
        """Walks this query will run (zero after a Theorem-2 early exit)."""
        return self._num_walks

    def finalize(self, endpoints: Sequence[np.ndarray]) -> HKPRResult:
        for ends in endpoints:
            self._estimates.add_many(ends, self._increment)
        self.counters.reserve_entries = max(
            self.counters.reserve_entries, self._estimates.nnz()
        )
        return HKPRResult(
            estimates=self._estimates,
            seed=self.seed_node,
            method=self.method,
            counters=self.counters,
            elapsed_seconds=time.perf_counter() - self._started,
            offset_per_degree=self._offset,
            early_exit=self.early_exit,
        )


def _distinct_seeds(seeds: Sequence[int]) -> list[int]:
    """Order-preserving distinct seed list (the ``*_many`` result is keyed
    by seed, so answering a duplicate twice would silently discard one run's
    walks)."""
    if not seeds:
        raise ParameterError("need at least one seed node")
    return list(dict.fromkeys(int(seed) for seed in seeds))


def monte_carlo_hkpr_many(
    graph: Graph,
    seeds: Sequence[int],
    params: HKPRParams,
    *,
    num_walks: int | None = None,
    rng: RandomState = None,
    backend: str | Backend | None = None,
) -> dict[int, HKPRResult]:
    """Monte-Carlo HKPR for every seed in ``seeds``, walks fused per batch.

    The multi-query analogue of chunking: all seeds' walks run through
    shared ``poisson_walk_batch`` calls, so the per-level kernel overhead is
    paid once per *batch* instead of once per *query*.  Duplicate seeds are
    answered once (the result mapping is keyed by seed).
    """
    seeds = _distinct_seeds(seeds)
    generator = ensure_rng(rng)
    engine = get_backend(backend)
    weights = PoissonWeights(params.t)
    plans = [
        MonteCarloPlan(graph, seed, params, num_walks=num_walks, weights=weights)
        for seed in seeds
    ]
    for plan in plans:
        plan.counters.extras["backend"] = engine.name
    results = execute_plans(engine, graph, plans, generator)
    return {plan.seed_node: result for plan, result in zip(plans, results)}


def tea_plus_many(
    graph: Graph,
    seeds: Sequence[int],
    params: HKPRParams,
    *,
    rng: RandomState = None,
    max_walks: int | None = None,
    backend: str | Backend | None = None,
    **plan_kwargs,
) -> dict[int, HKPRResult]:
    """TEA+ for every seed in ``seeds`` with residue walks fused per batch.

    Push phases run per seed (they are deterministic and query-specific);
    the hop-conditioned walk phases of all non-early-exit seeds share
    ``walk_batch`` calls.  Duplicate seeds are answered once.
    """
    seeds = _distinct_seeds(seeds)
    generator = ensure_rng(rng)
    engine = get_backend(backend)
    weights = PoissonWeights(params.t)
    plans = [
        TeaPlusPlan(
            graph, seed, params, rng=generator, max_walks=max_walks,
            weights=weights, **plan_kwargs,
        )
        for seed in seeds
    ]
    for plan in plans:
        plan.counters.extras["backend"] = engine.name
    results = execute_plans(engine, graph, plans, generator)
    return {plan.seed_node: result for plan, result in zip(plans, results)}
