"""The estimator registry: one name → :class:`EstimatorSpec` store.

Every query surface resolves method names here, so the set of available
methods, their aliases, their parameter schemas and their error messages
have exactly one source of truth.  Registering a new
:class:`~repro.estimators.spec.EstimatorSpec` makes the method available to

* :func:`repro.clustering.local.local_cluster` and
  :func:`repro.hkpr.batch.batch_hkpr` (library),
* the service planner, hence ``repro-cli serve`` and ``POST /query``
  (online serving; sweepable methods only),
* ``repro-cli cluster --method`` and ``repro-cli methods`` (CLI),
* :class:`repro.bench.harness.MethodConfig` (benchmark harness)

without touching any of those layers.
"""

from __future__ import annotations

from typing import Iterable

from repro.estimators.spec import EstimatorSpec
from repro.exceptions import ParameterError

_SPECS: dict[str, EstimatorSpec] = {}
_ALIASES: dict[str, str] = {}


def register(spec: EstimatorSpec) -> EstimatorSpec:
    """Add ``spec`` to the registry (returns it, for decorator-ish use).

    Canonical names and aliases share one namespace; collisions are
    programming errors and fail loudly at import time.
    """
    names = (spec.name, *spec.aliases)
    if len(set(names)) != len(names):
        raise ValueError(
            f"spec {spec.name!r} declares duplicate names/aliases: {names}"
        )
    taken = set(_SPECS) | set(_ALIASES)
    for name in names:
        if name in taken:
            raise ValueError(f"estimator name {name!r} is already registered")
    _SPECS[spec.name] = spec
    for alias in spec.aliases:
        _ALIASES[alias] = spec.name
    return spec


def unregister(name: str) -> None:
    """Remove a spec (tests only); accepts the canonical name."""
    spec = _SPECS.pop(name, None)
    if spec is None:
        raise ParameterError(f"method {name!r} is not registered")
    for alias in spec.aliases:
        _ALIASES.pop(alias, None)


def canonical_name(method: str) -> str:
    """Resolve ``method`` (canonical or alias) to its canonical name."""
    return resolve(method).name


def resolve(method: str) -> EstimatorSpec:
    """Look up a method by canonical name or alias.

    Raises :class:`ParameterError` listing every valid method name — the
    one unknown-method error message every surface shows.
    """
    if method in _SPECS:
        return _SPECS[method]
    target = _ALIASES.get(method)
    if target is not None:
        return _SPECS[target]
    raise ParameterError(
        f"unknown method {method!r}; expected one of {sorted(_SPECS)} "
        f"(aliases: {sorted(_ALIASES)})"
    )


def all_specs() -> tuple[EstimatorSpec, ...]:
    """Every registered spec, in registration order."""
    return tuple(_SPECS.values())


def method_names(
    *,
    family: str | None = None,
    sweepable: bool | None = None,
    servable: bool | None = None,
) -> tuple[str, ...]:
    """Canonical names of registered methods matching the given filters."""
    names = []
    for spec in _SPECS.values():
        if family is not None and spec.family != family:
            continue
        if sweepable is not None and spec.sweepable != sweepable:
            continue
        if servable is not None and spec.servable != servable:
            continue
        names.append(spec.name)
    return tuple(names)


def alias_table() -> dict[str, str]:
    """A copy of the alias → canonical-name mapping."""
    return dict(_ALIASES)


def describe_methods(specs: Iterable[EstimatorSpec] | None = None) -> list[dict]:
    """JSON-able descriptions (``repro-cli methods`` / ``GET /methods``)."""
    chosen = all_specs() if specs is None else tuple(specs)
    return [spec.describe() for spec in chosen]


def hkpr_estimator_table() -> dict[str, object]:
    """Legacy ``repro.hkpr.ESTIMATORS`` mapping, derived from the registry.

    Maps each HKPR-family method to its single-query estimator callable
    (the ``(graph, seed, params, *, ...) -> HKPRResult`` convention).
    """
    return {
        spec.name: spec.estimate_fn
        for spec in _SPECS.values()
        if spec.family == "hkpr" and spec.estimate_fn is not None
    }


def backend_aware_methods() -> frozenset[str]:
    """Legacy ``repro.hkpr.BACKEND_AWARE_METHODS``, derived from the registry."""
    return frozenset(spec.name for spec in _SPECS.values() if spec.backend_aware)
