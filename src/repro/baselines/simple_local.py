"""SimpleLocal-style flow-based cut improvement (Veldt, Gleich & Mahoney).

SimpleLocal improves the conductance of a reference region around the seed
by solving a sequence of maximum-flow / minimum-cut problems on an augmented
graph.  Following the MQI / SimpleLocal family:

1. Grow a reference set ``R`` around the seed by BFS until a volume budget
   (controlled by the ``locality`` parameter) is reached.
2. Repeatedly build the augmented network for the current set ``S`` with
   conductance ``phi``:
   * internal edges of ``S`` keep capacity 1,
   * a super-source connects to each ``v in S`` with capacity equal to the
     number of its edges leaving ``S`` (its share of the cut),
   * each ``v in S`` connects to a super-sink with capacity ``phi * d(v)``.
   If the minimum cut is smaller than ``|cut(S)|``, the source side of the
   cut (minus the super-source) is a strictly better-conductance subset;
   adopt it and repeat.  Otherwise ``S`` is optimal within ``R`` and we stop.

This reproduces the behaviour the paper reports for SimpleLocal: good for
*recovering* a cluster from a sizeable reference set, but expensive and poor
when seeded with a single node (Figure 4), because the flow problems operate
on the whole reference region rather than adapting to the seed.

The max-flow computations use :func:`networkx.algorithms.flow.preflow_push`
on the (local) augmented graph, so the cost depends only on the reference
region, keeping the method strongly local as in the original paper.
"""

from __future__ import annotations

import time
from collections import deque

import networkx as nx

from repro.baselines.common import BaselineClusteringResult
from repro.clustering.conductance import conductance
from repro.exceptions import ParameterError
from repro.graph.graph import Graph


def _grow_reference_set(graph: Graph, seed: int, volume_budget: int) -> set[int]:
    """BFS ball around ``seed`` with total volume at most ``volume_budget``."""
    reference = {seed}
    volume = graph.degree(seed)
    frontier = deque([seed])
    while frontier and volume < volume_budget:
        node = frontier.popleft()
        for neighbor in graph.neighbors(node):
            neighbor = int(neighbor)
            if neighbor in reference:
                continue
            degree = graph.degree(neighbor)
            if volume + degree > volume_budget and len(reference) > 1:
                continue
            reference.add(neighbor)
            volume += degree
            frontier.append(neighbor)
    return reference


def _improve_once(graph: Graph, current: set[int]) -> set[int] | None:
    """One MQI-style improvement step; returns a strictly better subset or None."""
    cut_edges = graph.cut_size(current)
    set_volume = graph.volume(current)
    if cut_edges == 0 or set_volume == 0:
        return None
    phi = cut_edges / set_volume

    flow_graph = nx.DiGraph()
    source, sink = "source", "sink"
    for node in current:
        boundary = sum(1 for nbr in graph.neighbors(node) if int(nbr) not in current)
        if boundary > 0:
            flow_graph.add_edge(source, node, capacity=float(boundary))
        flow_graph.add_edge(node, sink, capacity=phi * graph.degree(node))
        for neighbor in graph.neighbors(node):
            neighbor = int(neighbor)
            if neighbor in current:
                flow_graph.add_edge(node, neighbor, capacity=1.0)

    cut_value, (source_side, _) = nx.minimum_cut(
        flow_graph, source, sink, flow_func=nx.algorithms.flow.preflow_push
    )
    if cut_value >= cut_edges - 1e-12:
        return None
    improved = {node for node in source_side if node not in (source, sink)}
    if not improved or improved == current:
        return None
    return improved


def simple_local(
    graph: Graph,
    seed: int,
    *,
    locality: float = 0.05,
    max_iterations: int = 20,
) -> BaselineClusteringResult:
    """Flow-based local clustering around ``seed``.

    Parameters
    ----------
    locality:
        The paper's locality parameter ``delta``; smaller values allow a
        larger reference region (volume budget ``min(vol(G)/2, d(seed)/locality)``),
        hence more work and potentially better clusters.
    max_iterations:
        Cap on the number of flow-improvement rounds.
    """
    if not graph.has_node(seed):
        raise ParameterError(f"seed node {seed} is not in the graph")
    if locality <= 0:
        raise ParameterError(f"locality must be positive, got {locality}")
    start = time.perf_counter()

    volume_budget = int(
        min(graph.total_volume / 2.0, max(graph.degree(seed), 1) / locality)
    )
    volume_budget = max(volume_budget, graph.degree(seed) + 1)
    reference = _grow_reference_set(graph, seed, volume_budget)

    current = set(reference)
    iterations = 0
    while iterations < max_iterations:
        iterations += 1
        improved = _improve_once(graph, current)
        if improved is None:
            break
        # Keep the seed's side: if the improvement dropped the seed, fall back
        # to the seed's connected part of the improved set when possible.
        if seed in improved:
            current = improved
        else:
            keep = improved | {seed}
            current = keep

    phi = conductance(graph, current)
    elapsed = time.perf_counter() - start
    return BaselineClusteringResult(
        cluster=current,
        conductance=phi,
        seed=seed,
        method="simple-local",
        elapsed_seconds=elapsed,
        work=iterations,
        details={
            "reference_volume": float(graph.volume(reference)),
            "iterations": float(iterations),
        },
    )
