"""The residue-driven walk phase shared by TEA and TEA+ (Lines 12-17).

Both estimators finish identically: sample walk-starting residue entries
``(hop, node)`` proportionally to their residue values, run one
hop-conditioned heat kernel walk per sample through the active execution
backend, and add a fixed increment to the estimate at every endpoint.
Factored here so the chunking, sampling and accumulation logic exists
once (and a fix to it cannot silently diverge between the two).
"""

from __future__ import annotations

import numpy as np

from repro.engine import Backend, chunk_sizes
from repro.graph.graph import Graph
from repro.hkpr.alias import AliasSampler
from repro.hkpr.poisson import PoissonWeights
from repro.utils.counters import OperationCounters
from repro.utils.deadline import Deadline
from repro.utils.sparsevec import SparseVector


def run_residue_walk_phase(
    graph: Graph,
    entries: list[tuple[int, int, float]],
    num_walks: int,
    increment: float,
    *,
    engine: Backend,
    weights: PoissonWeights,
    rng: np.random.Generator,
    estimates: SparseVector,
    counters: OperationCounters | None = None,
    deadline: Deadline | None = None,
) -> None:
    """Run ``num_walks`` residue-sampled walks, accumulating into ``estimates``.

    ``entries`` are the non-zero residue entries as ``(hop, node, value)``
    triples; walk starts are drawn proportionally to ``value`` via an alias
    structure, and each walk ending at ``v`` adds ``increment`` to
    ``estimates[v]``.  The loop is chunked (:func:`repro.engine.chunk_sizes`)
    so the phase stays bounded-memory at theory-driven (omega-scale) walk
    counts; an optional ``deadline`` is checkpointed before every chunk so a
    timed-out query stops between kernel calls rather than mid-kernel.
    """
    start_nodes = np.fromiter(
        (node for _, node, _ in entries), np.int64, count=len(entries)
    )
    start_hops = np.fromiter(
        (hop for hop, _, _ in entries), np.int64, count=len(entries)
    )
    sampler = AliasSampler(start_nodes, [value for _, _, value in entries])
    for batch in chunk_sizes(num_walks):
        if deadline is not None:
            deadline.checkpoint()
        picks = sampler.sample_indices(batch, rng)
        end_nodes = engine.walk_batch(
            graph,
            start_nodes[picks],
            start_hops[picks],
            weights,
            rng,
            counters=counters,
        )
        estimates.add_many(end_nodes, increment)
