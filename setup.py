"""Package metadata for the HKPR local-clustering reproduction.

Kept in ``setup.py`` (not ``pyproject.toml``) so ``pip install -e .`` works
in offline environments without the ``wheel``/``build`` packages — pip then
falls back to ``setup.py develop``.

Extras:

* ``numba`` — the optional JIT walk backend (``pip install .[numba]``); the
  package degrades gracefully without it (the backend simply is not
  registered).
* ``test``  — everything the test/benchmark suite needs on top of the
  runtime dependencies.
"""

from setuptools import find_packages, setup

setup(
    name="repro-hkpr",
    version="0.4.0",
    description=(
        "Reproduction of 'Efficient Estimation of Heat Kernel PageRank for "
        "Local Clustering' (Yang et al., SIGMOD 2019) with a vectorized "
        "walk engine and an online query-serving layer"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=[
        "numpy>=1.24",
        "scipy>=1.10",
        "networkx>=3.0",
    ],
    extras_require={
        "numba": ["numba>=0.57"],
        "test": [
            "pytest>=7.0",
            "pytest-benchmark",
            "pytest-cov",
            "hypothesis",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro-cli = repro.cli:main",
        ],
    },
)
