"""Nibble: truncated lazy random walk local clustering (Spielman & Teng).

The first local clustering algorithm: starting from the indicator vector of
the seed, repeatedly apply the lazy random-walk operator
``W = (I + D^{-1} A) / 2``, truncate entries whose degree-normalized value
falls below a threshold (this is what keeps the work local), and sweep the
distribution after each step, keeping the best cut seen.

Included as a related-work baseline; the paper's lineage starts here.
"""

from __future__ import annotations

import time

from repro.baselines.common import BaselineClusteringResult
from repro.clustering.sweep import SweepResult, sweep_from_ranking
from repro.exceptions import ParameterError
from repro.graph.graph import Graph
from repro.hkpr.result import HKPRResult
from repro.utils.counters import OperationCounters
from repro.utils.deadline import Deadline
from repro.utils.sparsevec import SparseVector


def lazy_walk_step(
    graph: Graph,
    distribution: SparseVector,
    truncation: float,
    *,
    deadline: Deadline | None = None,
) -> tuple[SparseVector, int]:
    """One truncated lazy-walk step ``q <- trunc(q W)``; returns (q', work).

    Applies ``W = (I + D^{-1} A) / 2`` to ``distribution`` and zeroes
    entries whose degree-normalized value falls below ``truncation`` (unless
    that would empty the vector, in which case the un-truncated update is
    kept).  Shared by :func:`nibble` and :func:`nibble_hkpr`.  An optional
    ``deadline`` is checked once per source node with the node's degree as
    the cost.
    """
    updated = SparseVector()
    work = 0
    for node, mass in distribution.items():
        degree = graph.degree(node)
        if deadline is not None:
            deadline.check(max(degree, 1))
        # Lazy walk: keep half, spread half over the neighbors.
        updated.add(node, mass / 2.0)
        if degree > 0:
            share = mass / (2.0 * degree)
            for neighbor in graph.neighbors(node):
                updated.add(int(neighbor), share)
                work += 1
    # Truncate small degree-normalized entries to keep the support local.
    truncated = SparseVector()
    for node, mass in updated.items():
        degree = max(graph.degree(node), 1)
        if mass / degree >= truncation:
            truncated[node] = mass
    return (truncated if truncated.nnz() > 0 else updated), work


def nibble(
    graph: Graph,
    seed: int,
    *,
    steps: int = 20,
    truncation: float = 1e-5,
) -> BaselineClusteringResult:
    """Local clustering with truncated lazy random walks.

    Parameters
    ----------
    steps:
        Number of lazy-walk steps to simulate.
    truncation:
        Entries with ``q[v]/d(v)`` below this threshold are zeroed after
        every step, bounding the support (and hence the work).
    """
    if not graph.has_node(seed):
        raise ParameterError(f"seed node {seed} is not in the graph")
    if steps < 1:
        raise ParameterError(f"steps must be >= 1, got {steps}")
    if truncation < 0:
        raise ParameterError(f"truncation must be non-negative, got {truncation}")

    start = time.perf_counter()
    distribution = SparseVector({seed: 1.0})
    best_sweep: SweepResult | None = None
    work = 0

    for _ in range(steps):
        distribution, step_work = lazy_walk_step(graph, distribution, truncation)
        work += step_work

        ranking = sorted(
            distribution.keys(),
            key=lambda v: (
                -(distribution[v] / graph.degree(v)) if graph.degree(v) else 0.0,
                v,
            ),
        )
        if seed not in ranking:
            ranking.insert(0, seed)
        sweep = sweep_from_ranking(graph, ranking)
        if best_sweep is None or sweep.conductance < best_sweep.conductance:
            best_sweep = sweep

    elapsed = time.perf_counter() - start
    assert best_sweep is not None  # steps >= 1 guarantees at least one sweep
    return BaselineClusteringResult(
        cluster=set(best_sweep.cluster),
        conductance=best_sweep.conductance,
        seed=seed,
        method="nibble",
        elapsed_seconds=elapsed,
        work=work,
        details={"support_size": float(distribution.nnz())},
    )


def nibble_hkpr(
    graph: Graph,
    seed_node: int,
    *,
    steps: int = 20,
    truncation: float = 1e-5,
    deadline: Deadline | None = None,
) -> HKPRResult:
    """Nibble's diffusion vector in the unified estimator envelope.

    Runs ``steps`` truncated lazy-walk steps and returns the *final*
    distribution as an :class:`HKPRResult`, so the registry, the sweep cut
    and the serving layer can treat Nibble like any other diffusion
    estimator.  Note the difference from :func:`nibble`, which sweeps after
    *every* step and keeps the best cut seen — sweeping this vector
    reproduces only the final step's cut.
    """
    if not graph.has_node(seed_node):
        raise ParameterError(f"seed node {seed_node} is not in the graph")
    if steps < 1:
        raise ParameterError(f"steps must be >= 1, got {steps}")
    if truncation < 0:
        raise ParameterError(f"truncation must be non-negative, got {truncation}")
    start = time.perf_counter()
    distribution = SparseVector({seed_node: 1.0})
    counters = OperationCounters()
    if deadline is not None:
        deadline.bind(counters)
    for _ in range(steps):
        distribution, work = lazy_walk_step(
            graph, distribution, truncation, deadline=deadline
        )
        counters.record_pushes(work)
    counters.extras["steps"] = float(steps)
    counters.reserve_entries = distribution.nnz()
    return HKPRResult(
        estimates=distribution,
        seed=seed_node,
        method="nibble",
        counters=counters,
        elapsed_seconds=time.perf_counter() - start,
    )
