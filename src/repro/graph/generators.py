"""Synthetic graph generators.

The paper evaluates on six SNAP graphs plus two synthetic ones (PLC, a
Holme–Kim powerlaw-cluster graph, and a 3D grid).  This module provides the
two synthetic generators exactly as described, plus the families used to
build laptop-scale *surrogates* for the SNAP graphs (see ``DESIGN.md`` §2):

* :func:`powerlaw_cluster_graph` — Holme–Kim model (the paper's PLC),
* :func:`grid_3d_graph` — 3D grid / torus with degree 6 (the paper's 3D-grid),
* :func:`chung_lu_graph` — power-law expected-degree model,
* :func:`planted_partition_graph` — community-structured graphs
  (ground-truth communities live in :mod:`repro.graph.communities`),
* :func:`erdos_renyi_graph`, :func:`barabasi_albert_graph`,
  :func:`ring_graph`, :func:`star_graph`, :func:`complete_graph` — small
  building blocks used heavily by the test suite.

All generators take an explicit ``seed`` and are deterministic for a fixed
seed.  They return the largest connected component when ``connected=True``
(the default for the stochastic models), because local clustering from a
seed node is only meaningful within the seed's component.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError
from repro.graph.graph import Graph
from repro.utils.rng import RandomState, ensure_rng


def _largest_component(graph: Graph) -> Graph:
    """Return the induced subgraph on the largest connected component."""
    remaining = set(graph.nodes())
    best: set[int] = set()
    while remaining:
        start = next(iter(remaining))
        component = graph.connected_component(start)
        remaining -= component
        if len(component) > len(best):
            best = component
    sub, _ = graph.subgraph(sorted(best))
    return sub


def erdos_renyi_graph(
    n: int, p: float, *, seed: RandomState = None, connected: bool = False
) -> Graph:
    """G(n, p) random graph.

    Parameters
    ----------
    n: number of nodes.
    p: independent probability for each of the n(n-1)/2 edges.
    connected: if true, return only the largest connected component.
    """
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"edge probability must be in [0, 1], got {p}")
    rng = ensure_rng(seed)
    edges: list[tuple[int, int]] = []
    for u in range(n):
        draws = rng.random(n - u - 1)
        for offset in np.nonzero(draws < p)[0]:
            edges.append((u, u + 1 + int(offset)))
    graph = Graph(n, edges)
    return _largest_component(graph) if connected else graph


def ring_graph(n: int) -> Graph:
    """Cycle graph on ``n`` nodes (every node has degree 2)."""
    if n < 3:
        raise ParameterError(f"a ring needs at least 3 nodes, got {n}")
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def star_graph(n: int) -> Graph:
    """Star with one hub (node 0) and ``n - 1`` leaves."""
    if n < 2:
        raise ParameterError(f"a star needs at least 2 nodes, got {n}")
    return Graph(n, [(0, i) for i in range(1, n)])


def complete_graph(n: int) -> Graph:
    """Complete graph on ``n`` nodes."""
    if n < 1:
        raise ParameterError(f"a complete graph needs at least 1 node, got {n}")
    return Graph(n, [(u, v) for u in range(n) for v in range(u + 1, n)])


def path_graph(n: int) -> Graph:
    """Path graph on ``n`` nodes."""
    if n < 2:
        raise ParameterError(f"a path needs at least 2 nodes, got {n}")
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def barabasi_albert_graph(n: int, m: int, *, seed: RandomState = None) -> Graph:
    """Barabási–Albert preferential-attachment graph.

    Each new node attaches to ``m`` existing nodes chosen with probability
    proportional to degree.  Produces a power-law degree distribution similar
    to the social networks in the paper's benchmark set.
    """
    if m < 1 or m >= n:
        raise ParameterError(f"need 1 <= m < n, got m={m}, n={n}")
    rng = ensure_rng(seed)
    edges: list[tuple[int, int]] = []
    # Repeated-nodes list implements preferential attachment in O(1) per draw.
    repeated: list[int] = []
    targets = list(range(m))
    for new_node in range(m, n):
        chosen = set()
        for target in targets:
            if target != new_node:
                chosen.add(target)
        for target in chosen:
            edges.append((new_node, target))
            repeated.append(new_node)
            repeated.append(target)
        if repeated:
            picks = rng.integers(0, len(repeated), size=m)
            targets = list({repeated[int(i)] for i in picks})
        else:  # pragma: no cover - only for degenerate m
            targets = [0]
    graph = Graph(n, edges, dedupe=True)
    return _largest_component(graph)


def powerlaw_cluster_graph(
    n: int, m: int, triangle_probability: float, *, seed: RandomState = None
) -> Graph:
    """Holme–Kim powerlaw-cluster graph (the paper's *PLC* dataset).

    Starts like Barabási–Albert but, after each preferential attachment,
    with probability ``triangle_probability`` the next edge instead closes a
    triangle with a random neighbor of the previously chosen target.  This
    yields a power-law degree distribution *and* a tunable clustering
    coefficient, matching the generator the paper cites.

    Parameters
    ----------
    n: number of nodes.
    m: edges added per new node.
    triangle_probability: probability of closing a triangle per added edge.
    """
    if m < 1 or m >= n:
        raise ParameterError(f"need 1 <= m < n, got m={m}, n={n}")
    if not 0.0 <= triangle_probability <= 1.0:
        raise ParameterError(
            f"triangle probability must be in [0, 1], got {triangle_probability}"
        )
    rng = ensure_rng(seed)
    adjacency: list[set[int]] = [set() for _ in range(n)]
    repeated: list[int] = list(range(m))

    def add_edge(u: int, v: int) -> bool:
        if u == v or v in adjacency[u]:
            return False
        adjacency[u].add(v)
        adjacency[v].add(u)
        repeated.append(u)
        repeated.append(v)
        return True

    for new_node in range(m, n):
        added = 0
        last_target: int | None = None
        guard = 0
        while added < m and guard < 50 * m:
            guard += 1
            close_triangle = (
                last_target is not None
                and adjacency[last_target]
                and rng.random() < triangle_probability
            )
            if close_triangle:
                candidates = sorted(adjacency[last_target])
                target = int(candidates[rng.integers(len(candidates))])
            else:
                target = int(repeated[rng.integers(len(repeated))])
            if add_edge(new_node, target):
                added += 1
                last_target = target
    edges = [(u, v) for u in range(n) for v in adjacency[u] if u < v]
    graph = Graph(n, edges)
    return _largest_component(graph)


def grid_3d_graph(
    nx_dim: int, ny_dim: int, nz_dim: int, *, periodic: bool = True
) -> Graph:
    """3D grid graph (the paper's *3D-grid* dataset).

    With ``periodic=True`` (a torus) every node has exactly six neighbors,
    matching the paper's description ("every node has six edges, each
    connecting it to its 2 neighbors in each dimension").
    """
    dims = (nx_dim, ny_dim, nz_dim)
    if any(d < (3 if periodic else 2) for d in dims):
        raise ParameterError(
            f"each dimension must be >= {3 if periodic else 2}, got {dims}"
        )

    def node_id(x: int, y: int, z: int) -> int:
        return (x * ny_dim + y) * nz_dim + z

    edges: list[tuple[int, int]] = []
    for x in range(nx_dim):
        for y in range(ny_dim):
            for z in range(nz_dim):
                here = node_id(x, y, z)
                if x + 1 < nx_dim:
                    edges.append((here, node_id(x + 1, y, z)))
                elif periodic:
                    edges.append((here, node_id(0, y, z)))
                if y + 1 < ny_dim:
                    edges.append((here, node_id(x, y + 1, z)))
                elif periodic:
                    edges.append((here, node_id(x, 0, z)))
                if z + 1 < nz_dim:
                    edges.append((here, node_id(x, y, z + 1)))
                elif periodic:
                    edges.append((here, node_id(x, y, 0)))
    return Graph(nx_dim * ny_dim * nz_dim, edges, dedupe=True)


def chung_lu_graph(
    degree_sequence: list[int] | np.ndarray,
    *,
    seed: RandomState = None,
    connected: bool = True,
) -> Graph:
    """Chung–Lu style random graph with a given expected degree sequence.

    Uses the fast edge-sampling variant: ``sum(w)/2`` candidate edges are
    drawn with both endpoints sampled proportionally to the weights, which
    reproduces the expected degree profile up to sampling noise.  Used to
    build surrogates that match a target (power-law) degree distribution.
    """
    weights = np.asarray(degree_sequence, dtype=float)
    if np.any(weights < 0):
        raise ParameterError("expected degrees must be non-negative")
    n = len(weights)
    total = weights.sum()
    if total <= 0:
        raise ParameterError("expected degree sequence must have positive sum")
    rng = ensure_rng(seed)
    probabilities = weights / total
    num_candidates = max(1, int(round(total / 2.0)))
    sources = rng.choice(n, size=num_candidates, p=probabilities)
    targets = rng.choice(n, size=num_candidates, p=probabilities)
    edges = [
        (int(u), int(v)) for u, v in zip(sources, targets, strict=True) if u != v
    ]
    graph = Graph(n, edges, dedupe=True)
    return _largest_component(graph) if connected else graph


def power_law_degree_sequence(
    n: int, exponent: float, min_degree: int, max_degree: int, *, seed: RandomState = None
) -> np.ndarray:
    """Sample ``n`` integer degrees from a truncated power law.

    ``P(d) ∝ d^{-exponent}`` for ``min_degree <= d <= max_degree``.
    """
    if exponent <= 1.0:
        raise ParameterError(f"power-law exponent must be > 1, got {exponent}")
    if min_degree < 1 or max_degree < min_degree:
        raise ParameterError(
            f"need 1 <= min_degree <= max_degree, got {min_degree}, {max_degree}"
        )
    rng = ensure_rng(seed)
    support = np.arange(min_degree, max_degree + 1, dtype=float)
    pmf = support**-exponent
    pmf /= pmf.sum()
    return rng.choice(support.astype(int), size=n, p=pmf)


def planted_partition_graph(
    num_communities: int,
    community_size: int,
    p_in: float,
    p_out: float,
    *,
    seed: RandomState = None,
) -> tuple[Graph, list[list[int]]]:
    """Planted-partition (stochastic block model) graph.

    Returns the graph and the list of planted communities (node-id lists).
    Used both for ground-truth-community experiments (Table 8) and for the
    test suite's "does local clustering recover the planted block" checks.
    """
    if num_communities < 1 or community_size < 2:
        raise ParameterError("need at least one community of size >= 2")
    if not (0.0 <= p_out <= p_in <= 1.0):
        raise ParameterError(
            f"need 0 <= p_out <= p_in <= 1, got p_in={p_in}, p_out={p_out}"
        )
    rng = ensure_rng(seed)
    n = num_communities * community_size
    communities = [
        list(range(c * community_size, (c + 1) * community_size))
        for c in range(num_communities)
    ]
    membership = np.repeat(np.arange(num_communities), community_size)
    edges: list[tuple[int, int]] = []
    for u in range(n):
        draws = rng.random(n - u - 1)
        same = membership[u + 1 :] == membership[u]
        threshold = np.where(same, p_in, p_out)
        for offset in np.nonzero(draws < threshold)[0]:
            edges.append((u, u + 1 + int(offset)))
    return Graph(n, edges), communities
