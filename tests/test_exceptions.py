"""Tests for the exception hierarchy and the public package surface."""

from __future__ import annotations

import pytest

import repro
from repro.exceptions import (
    ConvergenceError,
    DatasetError,
    EmptyGraphError,
    GraphError,
    NodeNotFoundError,
    ParameterError,
    ReproError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [GraphError, NodeNotFoundError, EmptyGraphError, ParameterError, DatasetError, ConvergenceError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_node_not_found_message_and_fields(self):
        error = NodeNotFoundError(7, 5)
        assert error.node == 7
        assert error.n == 5
        assert "7" in str(error)

    def test_empty_graph_is_graph_error(self):
        assert issubclass(EmptyGraphError, GraphError)


class TestPublicAPI:
    def test_version_string(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_estimator_registry_contents(self):
        # The legacy table is derived from the unified registry's HKPR
        # family, which PR 5 extended with the push-only methods.
        assert set(repro.ESTIMATORS) == {
            "exact",
            "monte-carlo",
            "cluster-hkpr",
            "hk-relax",
            "hk-push",
            "hk-push+",
            "tea",
            "tea+",
        }

    def test_declarative_estimate_exported(self):
        graph = repro.generators.ring_graph(20)
        result = repro.estimate(graph, 0, method="monte-carlo", rng=1, num_walks=50)
        assert result.counters.random_walks == 50

    def test_quickstart_docstring_example_runs(self):
        graph = repro.generators.powerlaw_cluster_graph(200, 3, 0.3, seed=1)
        result = repro.local_cluster(graph, seed=0, method="tea+", rng=1)
        assert result.contains_seed()
