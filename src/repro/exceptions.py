"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class at their integration boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Raised when a graph is malformed or an operation is invalid for it."""


class NodeNotFoundError(GraphError):
    """Raised when a node id is outside the graph's node range."""

    def __init__(self, node: int, n: int) -> None:
        super().__init__(f"node {node} is not in the graph (valid range: 0..{n - 1})")
        self.node = node
        self.n = n


class EmptyGraphError(GraphError):
    """Raised when an operation requires a non-empty graph."""


class WalkIndexError(GraphError):
    """Raised when a ``.rwix`` walk-sketch index is corrupt or stale.

    A subclass of :class:`GraphError` because an index is derived data bound
    to one specific graph: a bad container, a CRC mismatch, or an epoch
    (fingerprint) mismatch all mean "this file cannot serve this graph".
    """


class ParameterError(ReproError):
    """Raised when an algorithm parameter is out of its valid range."""


class DatasetError(ReproError):
    """Raised when a benchmark dataset cannot be built or is unknown."""


class ConvergenceError(ReproError):
    """Raised when an iterative method fails to converge within its budget."""


class QueryTimeoutError(ReproError):
    """Raised when a query exceeds its cooperative execution deadline.

    Estimators raise this from their push/walk loops when a bound
    :class:`repro.utils.Deadline` expires.  The HTTP frontend maps it to
    status 504 so clients can tell "your query was too expensive for its
    deadline" apart from invalid input (400) and internal faults (500).

    ``counters`` carries the partial-work accounting gathered before the
    deadline tripped (``extras["deadline_hit"]`` is set to ``1.0``).
    """

    def __init__(
        self,
        timeout_ms: float,
        elapsed_ms: float | None = None,
        *,
        counters: object | None = None,
    ) -> None:
        detail = f"query exceeded its {timeout_ms:g} ms deadline"
        if elapsed_ms is not None:
            detail += f" (elapsed {elapsed_ms:.1f} ms)"
        super().__init__(detail)
        self.timeout_ms = float(timeout_ms)
        self.elapsed_ms = elapsed_ms
        self.counters = counters


class ServiceError(ReproError):
    """Raised for invalid requests to the query-serving layer."""


class ServiceOverloadedError(ServiceError):
    """Raised when admission control rejects a request (backpressure).

    The HTTP frontend maps this to status 429 so load generators and
    clients can distinguish overload from invalid input.
    """


class ServiceExecutionError(Exception):
    """A server-side failure while executing an admitted query.

    Deliberately **not** a :class:`ReproError`: every ``ReproError`` at the
    service boundary means "your request was invalid" (HTTP 400), while
    this means "your valid request hit an internal fault" (HTTP 500), so
    retry and alerting logic can tell them apart.
    """


