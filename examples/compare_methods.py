"""Side-by-side comparison of every local clustering method in the package.

Runs every method registered in the unified estimator registry
(:mod:`repro.estimators`) — the HKPR estimators, their push-only forms,
the PPR mirrors, and the flow-based and classic baselines — on the same
seed nodes of the same graph, reporting time, conductance and cluster
size: a miniature, single-table version of the paper's Figure 4.

The method list is *discovered from the registry*, so a newly registered
estimator shows up in this comparison (and in `repro-cli methods`, the
server, and the bench harness) with no change here.

Run with:  python examples/compare_methods.py
"""

from __future__ import annotations

import time

from repro import HKPRParams, estimators, generators, local_cluster

#: Cheap knobs for the sampling methods (pure Python would otherwise run
#: the theory-driven walk counts); everything else uses its declared
#: defaults straight from the registry.
OVERRIDES = {
    "tea": {"max_pushes": 200_000},
    "hk-relax": {"eps_a": 1e-4},
    "monte-carlo": {"num_walks": 20_000},
    "cluster-hkpr": {"eps": 0.1, "num_walks": 20_000},
    "mc-ppr": {"num_walks": 20_000},
    "fora": {"max_walks": 20_000},
    "pr-nibble": {"eps": 1e-5},
    "nibble": {"steps": 15},
    "simple-local": {"locality": 0.05},
    "crd": {"iterations": 10},
}


def main() -> None:
    graph = generators.powerlaw_cluster_graph(1200, 6, 0.5, seed=5)
    params = HKPRParams(t=5.0, eps_r=0.5, delta=1.0 / graph.num_nodes, p_f=1e-6)
    seeds = [10, 200, 777]
    print(f"graph: n={graph.num_nodes}, m={graph.num_edges}; seeds {seeds}\n")

    print(f"{'method':<14} {'family':<9} {'avg time (ms)':>14} "
          f"{'avg conductance':>16} {'avg size':>9}")
    for spec in estimators.all_specs():
        kwargs = OVERRIDES.get(spec.name, {})
        total_ms, total_phi, total_size = 0.0, 0.0, 0
        for seed_node in seeds:
            start = time.perf_counter()
            if spec.sweepable:
                # Note: through the unified API, nibble sweeps its *final*
                # lazy-walk distribution; the classic best-cut-over-all-steps
                # variant remains available as repro.baselines.nibble.
                result = local_cluster(
                    graph,
                    seed_node,
                    method=spec.name,
                    params=params if spec.accepts_params_object else None,
                    rng=seed_node,
                    estimator_kwargs=kwargs,
                )
            else:
                # Flow baselines have no diffusion vector to sweep; the
                # registry still runs them through one uniform entry point.
                result = spec.cluster(graph, seed_node, **kwargs)
            total_ms += (time.perf_counter() - start) * 1000
            total_phi += result.conductance
            total_size += result.size
        n = len(seeds)
        print(
            f"{spec.name:<14} {spec.family:<9} {total_ms / n:>14.1f} "
            f"{total_phi / n:>16.4f} {total_size / n:>9.1f}"
        )

    print(
        "\nExpected shape (paper, Figure 4): the HKPR push/hybrid methods give "
        "the best conductance-per-millisecond; pure sampling costs more for "
        "the same quality; flow-based methods are slower from single seeds."
    )


if __name__ == "__main__":
    main()
