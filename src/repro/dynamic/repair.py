"""Incremental repair of push states under edge mutations.

The push procedures (:func:`repro.ppr.push.forward_push`, Algorithm 1's
:func:`repro.hkpr.hk_push.hk_push`) maintain an exact algebraic invariant —
e.g. for PPR

    pi_s[v] = p[v] + sum_u r[u] * pi_u[v]

— where every term a node ``u`` contributed depends *only* on ``u``'s own
adjacency at the moment it pushed.  That locality is what makes cached push
states repairable under updates in the spirit of bounded-update-cost
dynamic query evaluation: when a batch of edges touching nodes ``T``
changes, only the pushes *from* ``T`` encoded stale adjacency; every other
contribution remains exactly valid.

The repair is therefore **undo and replay**:

1. **Undo.**  For each touched node ``u``, reverse every push it ever made
   (the provenance accumulators ``pushed`` / ``settled`` recorded the total
   mass, and the :class:`MutationEvent` lets us reconstruct ``u``'s
   pre-mutation adjacency from the current snapshot): give the mass back to
   ``u``'s residue, take the settled fraction out of the reserve, and pull
   the distributed shares back from the old neighbors.  Each step is the
   exact algebraic inverse of a push, so the invariant keeps holding — now
   with *signed* residues.
2. **Replay.**  Run the push loop on the new graph with the threshold on
   ``|r|``: residues created by the undo (positive at ``u``, negative at
   the old neighbors) drain through the *new* adjacency until every entry
   satisfies ``|r^(k)[v]| <= r_max * d(v)`` again.

Total cost is proportional to the touched neighborhoods, not the graph —
the whole point versus recomputing from scratch.  The repaired state
satisfies the same invariant and the same per-degree residue bound as a
fresh push (with absolute values), so its reserve approximates the new
graph's PPR/HKPR vector within the same ``r_max``-scaled error envelope;
it is *not* bitwise identical to a fresh push, whose different push order
rounds differently.

States must see every epoch: ``repair_*`` validates that the event's
``epoch_before`` matches the state's epoch, so callers replay mutation
events in order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.dynamic.delta import MutationEvent
from repro.exceptions import ParameterError
from repro.hkpr.hk_push import hk_push
from repro.hkpr.poisson import PoissonWeights
from repro.hkpr.residues import ResidueVectors
from repro.ppr.push import forward_push
from repro.utils.counters import OperationCounters
from repro.utils.sparsevec import SparseVector


@dataclass
class DynamicPPRState:
    """A repairable forward-push state pinned to one graph epoch.

    ``reserve`` is the usual lower-bound PPR estimate; ``residue`` may hold
    *signed* entries after a repair (``|r[v]| <= r_max * d(v)`` always).
    ``pushed[u]`` / ``settled[u]`` record the total mass ``u`` distributed /
    settled in place — always under ``u``'s adjacency at ``epoch``.
    """

    seed_node: int
    alpha: float
    r_max: float
    epoch: int
    reserve: SparseVector
    residue: SparseVector
    pushed: SparseVector
    settled: SparseVector
    repairs: int = 0

    @property
    def estimates(self) -> SparseVector:
        """The PPR estimate vector (the reserve)."""
        return self.reserve


@dataclass
class DynamicHKState:
    """A repairable HK-Push state pinned to one graph epoch.

    The per-hop analogue of :class:`DynamicPPRState`: ``pushed`` records,
    per ``(hop, node)``, the residue value distributed to hop ``k + 1``,
    and ``settled`` the isolated-node settles.  Horizon settles are never
    recorded — they do not depend on adjacency.
    """

    seed_node: int
    t: float
    r_max: float
    epoch: int
    weights: PoissonWeights
    reserve: SparseVector
    residues: ResidueVectors
    pushed: ResidueVectors
    settled: ResidueVectors
    repairs: int = 0

    @property
    def estimates(self) -> SparseVector:
        """The HKPR estimate vector (the reserve)."""
        return self.reserve


def dynamic_forward_push(
    graph,
    seed_node: int,
    *,
    alpha: float = 0.15,
    r_max: float = 1e-4,
    counters: OperationCounters | None = None,
) -> DynamicPPRState:
    """Run a from-scratch forward push that records repair provenance."""
    pushed = SparseVector()
    settled = SparseVector()
    outcome = forward_push(
        graph,
        seed_node,
        alpha=alpha,
        r_max=r_max,
        counters=counters,
        pushed=pushed,
        settled=settled,
    )
    return DynamicPPRState(
        seed_node=seed_node,
        alpha=alpha,
        r_max=r_max,
        epoch=int(getattr(graph, "epoch", 0)),
        reserve=outcome.reserve,
        residue=outcome.residue,
        pushed=pushed,
        settled=settled,
    )


def dynamic_hk_push(
    graph,
    seed_node: int,
    *,
    t: float = 5.0,
    r_max: float = 1e-4,
    counters: OperationCounters | None = None,
) -> DynamicHKState:
    """Run a from-scratch HK-Push that records repair provenance."""
    weights = PoissonWeights(t)
    pushed = ResidueVectors()
    settled = ResidueVectors()
    outcome = hk_push(
        graph,
        seed_node,
        r_max,
        weights,
        counters=counters,
        pushed=pushed,
        settled=settled,
    )
    return DynamicHKState(
        seed_node=seed_node,
        t=t,
        r_max=r_max,
        epoch=int(getattr(graph, "epoch", 0)),
        weights=weights,
        reserve=outcome.reserve,
        residues=outcome.residues,
        pushed=pushed,
        settled=settled,
    )


def _check_event(state, graph, event: MutationEvent) -> None:
    if event.epoch_before != state.epoch:
        raise ParameterError(
            f"state is at epoch {state.epoch} but the event mutates "
            f"epoch {event.epoch_before} -> {event.epoch}; repair events in order"
        )
    graph_epoch = getattr(graph, "epoch", None)
    if graph_epoch is not None and graph_epoch != event.epoch:
        raise ParameterError(
            f"graph snapshot is at epoch {graph_epoch}, expected the "
            f"post-event epoch {event.epoch}"
        )


def _old_neighbors(graph, event: MutationEvent, node: int) -> list[int]:
    """Reconstruct ``node``'s pre-event adjacency from the new snapshot."""
    current = {int(v) for v in graph.neighbors(node)}
    for v in event.added_neighbors(node):
        current.discard(v)
    for v in event.removed_neighbors(node):
        current.add(v)
    return sorted(current)


def repair_ppr_push(
    state: DynamicPPRState,
    graph,
    event: MutationEvent,
    *,
    counters: OperationCounters | None = None,
) -> DynamicPPRState:
    """Repair ``state`` in place for one mutation event; returns ``state``.

    ``graph`` must be the post-event snapshot (``graph.epoch ==
    event.epoch`` when the graph carries an epoch).
    """
    _check_event(state, graph, event)
    counters = counters if counters is not None else OperationCounters()
    alpha, r_max = state.alpha, state.r_max
    reserve, residue = state.reserve, state.residue
    pushed, settled = state.pushed, state.settled

    frontier: deque[int] = deque()
    queued: set[int] = set()

    def enqueue(node: int) -> None:
        if node not in queued:
            frontier.append(node)
            queued.add(node)

    # -- Undo: reverse every push made from a touched node. ------------- #
    for node in (int(v) for v in event.touched_nodes()):
        stale_settle = settled[node]
        if stale_settle != 0.0:
            reserve.add(node, -stale_settle)
            residue.add(node, stale_settle)
            settled[node] = 0.0
        total = pushed[node]
        if total != 0.0:
            old_nbrs = _old_neighbors(graph, event, node)
            share = (1.0 - alpha) * total / len(old_nbrs)
            reserve.add(node, -alpha * total)
            residue.add(node, total)
            for neighbor in old_nbrs:
                residue.add(neighbor, -share)
                counters.record_pushes(1)
                enqueue(neighbor)
            pushed[node] = 0.0
        enqueue(node)

    # -- Replay: drain signed residues through the new adjacency. -------- #
    while frontier:
        node = frontier.popleft()
        queued.discard(node)
        value = residue[node]
        degree = graph.degree(node)
        if degree == 0:
            if value != 0.0:
                reserve.add(node, value)
                settled.add(node, value)
                residue[node] = 0.0
            continue
        if abs(value) <= r_max * degree:
            continue
        pushed.add(node, value)
        reserve.add(node, alpha * value)
        residue[node] = 0.0
        share = (1.0 - alpha) * value / degree
        for neighbor in graph.neighbors(node):
            neighbor = int(neighbor)
            new_value = residue[neighbor] + share
            residue[neighbor] = new_value
            counters.record_pushes(1)
            if abs(new_value) > r_max * graph.degree(neighbor):
                enqueue(neighbor)

    state.epoch = event.epoch
    state.repairs += 1
    return state


def repair_hk_push(
    state: DynamicHKState,
    graph,
    event: MutationEvent,
    *,
    counters: OperationCounters | None = None,
) -> DynamicHKState:
    """Repair an HK-Push ``state`` in place for one mutation event.

    The per-hop mirror of :func:`repair_ppr_push`; residues stay separated
    by hop throughout because heat kernel walks are non-Markovian.
    """
    _check_event(state, graph, event)
    counters = counters if counters is not None else OperationCounters()
    r_max = state.r_max
    weights = state.weights
    hop_limit = weights.max_hop
    reserve, residues = state.reserve, state.residues
    pushed, settled = state.pushed, state.settled

    frontier: deque[tuple[int, int]] = deque()
    queued: set[tuple[int, int]] = set()

    def enqueue(hop: int, node: int) -> None:
        key = (hop, node)
        if key not in queued:
            frontier.append(key)
            queued.add(key)

    # -- Undo: reverse every push made from a touched node, per hop. ----- #
    for node in (int(v) for v in event.touched_nodes()):
        old_nbrs: list[int] | None = None
        hops = max(pushed.num_hops, settled.num_hops, residues.num_hops)
        for hop in range(hops):
            stale_settle = settled.get(hop, node)
            if stale_settle != 0.0:
                reserve.add(node, -stale_settle)
                residues.add(hop, node, stale_settle)
                settled.set(hop, node, 0.0)
            total = pushed.get(hop, node)
            if total != 0.0:
                if old_nbrs is None:
                    old_nbrs = _old_neighbors(graph, event, node)
                stop_fraction = weights.stop_probability(hop)
                reserve.add(node, -stop_fraction * total)
                residues.add(hop, node, total)
                share = (1.0 - stop_fraction) * total / len(old_nbrs)
                for neighbor in old_nbrs:
                    residues.add(hop + 1, neighbor, -share)
                    counters.record_pushes(1)
                    enqueue(hop + 1, neighbor)
                pushed.set(hop, node, 0.0)
            enqueue(hop, node)

    # -- Replay: drain signed per-hop residues on the new adjacency. ----- #
    while frontier:
        hop, node = frontier.popleft()
        queued.discard((hop, node))
        value = residues.get(hop, node)
        if value == 0.0:
            continue
        degree = graph.degree(node)
        if degree == 0:
            # Isolated: the surviving walk mass stays put, settle all of it.
            reserve.add(node, value)
            settled.add(hop, node, value)
            residues.clear(hop, node)
            continue
        if abs(value) <= r_max * degree:
            continue
        stop_fraction = weights.stop_probability(hop)
        if hop + 1 <= hop_limit:
            pushed.add(hop, node, value)
            reserve.add(node, stop_fraction * value)
            residues.clear(hop, node)
            share = (1.0 - stop_fraction) * value / degree
            next_hop = hop + 1
            for neighbor in graph.neighbors(node):
                neighbor = int(neighbor)
                new_value = residues.add(next_hop, neighbor, share)
                counters.record_pushes(1)
                if abs(new_value) > r_max * graph.degree(neighbor):
                    enqueue(next_hop, neighbor)
        else:
            # Past the Poisson horizon: settle in place, exactly like the
            # static push.  Not recorded — independent of adjacency.
            reserve.add(node, value)
            residues.clear(hop, node)

    state.epoch = event.epoch
    state.repairs += 1
    return state
