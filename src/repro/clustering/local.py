"""High-level local clustering API.

``local_cluster(graph, seed, method="tea+")`` runs the full two-phase
pipeline of the paper: estimate an approximate diffusion vector with the
chosen method, then sweep it for the lowest-conductance prefix.  It is the
one-stop entry point the examples and the benchmark harness use.

Method dispatch goes through the unified estimator registry
(:mod:`repro.estimators`): every registered *sweepable* method — the HKPR
estimators, their push-only forms (``hk-push``, ``hk-push+``), the PPR
mirrors (``fora``, ``mc-ppr``, ``exact-ppr``) and the sweepable classic
baselines (``nibble``, ``pr-nibble``) — is accepted here, by canonical
name or alias, with no clustering-layer method table to keep in sync.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.clustering.sweep import SweepResult, sweep_cut
from repro.exceptions import ParameterError
from repro.graph.graph import Graph
from repro.hkpr.params import HKPRParams
from repro.hkpr.result import HKPRResult
from repro.utils.rng import RandomState


def __getattr__(name: str):
    # SUPPORTED_METHODS is derived from the estimator registry rather than
    # hand-maintained here; the lazy attribute avoids an import cycle at
    # module load (repro.estimators imports the estimator implementations,
    # some of which import this package's sweep machinery).
    if name == "SUPPORTED_METHODS":
        from repro.estimators import method_names

        return method_names(sweepable=True)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class LocalClusteringResult:
    """A local cluster together with the HKPR estimation that produced it."""

    cluster: set[int]
    conductance: float
    seed: int
    method: str
    hkpr: HKPRResult
    sweep: SweepResult
    elapsed_seconds: float

    @property
    def size(self) -> int:
        """Number of nodes in the cluster."""
        return len(self.cluster)

    def contains_seed(self) -> bool:
        """Whether the seed node ended up in the returned cluster."""
        return self.seed in self.cluster


def local_cluster(
    graph: Graph,
    seed: int,
    *,
    method: str = "tea+",
    params: HKPRParams | None = None,
    rng: RandomState = None,
    estimator_kwargs: dict | None = None,
    backend: str | None = None,
) -> LocalClusteringResult:
    """Find a low-conductance cluster containing ``seed``.

    Parameters
    ----------
    graph:
        The input graph.
    seed:
        The seed node the cluster must contain.
    method:
        Any sweepable method registered in :mod:`repro.estimators`
        (canonical name or alias; default ``"tea+"``).  See
        :data:`SUPPORTED_METHODS` or ``repro-cli methods``.
    params:
        HKPR parameters; defaults to ``HKPRParams(delta=1/n)``, the setting
        the paper uses for its headline experiments.  Methods outside the
        HKPR family (e.g. ``nibble``, ``mc-ppr``) take their knobs through
        ``estimator_kwargs`` instead.
    rng:
        Seed or generator for randomized estimators.
    estimator_kwargs:
        Extra keyword arguments forwarded to the estimator (for example
        ``{"eps_a": 1e-5}`` for HK-Relax or ``{"eps": 0.01}`` for
        ClusterHKPR).
    backend:
        Walk-execution backend for estimators with a walk phase
        (see :mod:`repro.engine`); ignored by the deterministic methods.

    Returns
    -------
    LocalClusteringResult

    Examples
    --------
    >>> from repro.graph.generators import planted_partition_graph
    >>> g, blocks = planted_partition_graph(4, 20, 0.4, 0.01, seed=7)
    >>> result = local_cluster(g, seed=0, method="tea+", rng=7)
    >>> result.contains_seed()
    True
    """
    from repro.estimators import resolve  # local import to avoid a cycle at module load

    spec = resolve(method)
    if not spec.sweepable:
        raise ParameterError(
            f"method {spec.name!r} does not produce a sweepable diffusion "
            f"vector; call its own entry point (repro.baselines) instead"
        )
    if not graph.has_node(seed):
        raise ParameterError(f"seed node {seed} is not in the graph")

    start = time.perf_counter()
    hkpr = spec.estimate(
        graph,
        seed,
        params=params,
        rng=rng,
        estimator_kwargs=estimator_kwargs,
        backend=backend,
    )
    sweep = sweep_cut(graph, hkpr)
    elapsed = time.perf_counter() - start

    return LocalClusteringResult(
        cluster=set(sweep.cluster),
        conductance=sweep.conductance,
        seed=seed,
        method=spec.name,
        hkpr=hkpr,
        sweep=sweep,
        elapsed_seconds=elapsed,
    )
