"""Tests for cooperative query deadlines (:mod:`repro.utils.deadline`).

The Deadline primitive itself is exercised against an injectable fake
clock (fully deterministic); the estimator integration tests hand each
push/walk loop an already-expired deadline with ``stride=1`` and assert
the loop trips promptly with partial-work accounting.
"""

from __future__ import annotations

import pytest

from repro.baselines.nibble import nibble_hkpr
from repro.baselines.pr_nibble import pr_nibble_hkpr
from repro.exceptions import ParameterError, QueryTimeoutError
from repro.hkpr.cluster_hkpr import cluster_hkpr
from repro.hkpr.hk_push import hk_push_hkpr
from repro.hkpr.hk_push_plus import hk_push_plus_hkpr
from repro.hkpr.hk_relax import hk_relax
from repro.hkpr.monte_carlo import monte_carlo_hkpr
from repro.hkpr.tea import tea
from repro.hkpr.tea_plus import tea_plus
from repro.ppr.fora import fora, monte_carlo_ppr
from repro.utils import DEFAULT_CHECK_STRIDE, Deadline
from repro.utils.counters import OperationCounters


class FakeClock:
    """A manually-advanced monotonic clock for deterministic deadline tests."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def expired_deadline() -> Deadline:
    """A deadline guaranteed to trip on its first clock read."""
    clock = FakeClock()
    deadline = Deadline(10.0, stride=1, clock=clock)
    clock.advance(1.0)  # 1 s past a 10 ms budget
    return deadline


class TestDeadline:
    def test_validation(self):
        with pytest.raises(ParameterError, match="timeout_ms must be positive"):
            Deadline(0)
        with pytest.raises(ParameterError, match="timeout_ms must be positive"):
            Deadline(-5)
        with pytest.raises(ParameterError, match="stride must be >= 1"):
            Deadline(100, stride=0)

    def test_does_not_trip_before_expiry(self):
        clock = FakeClock()
        deadline = Deadline(100.0, stride=1, clock=clock)
        for _ in range(50):
            deadline.check()
        clock.advance(0.099)
        deadline.check()
        deadline.checkpoint()
        assert not deadline.expired()
        assert deadline.remaining_seconds() == pytest.approx(0.001)

    def test_checkpoint_trips_at_expiry(self):
        clock = FakeClock()
        deadline = Deadline(100.0, clock=clock)
        clock.advance(0.1)  # exactly at expiry
        with pytest.raises(QueryTimeoutError) as excinfo:
            deadline.checkpoint()
        assert excinfo.value.timeout_ms == 100.0
        assert excinfo.value.elapsed_ms == pytest.approx(100.0)
        assert "100 ms deadline" in str(excinfo.value)

    def test_check_is_stride_counted(self):
        clock = FakeClock()
        deadline = Deadline(10.0, stride=100, clock=clock)
        clock.advance(1.0)  # already expired, but credit not yet drained
        for _ in range(99):
            deadline.check()  # 99 units: below the stride, no clock read
        with pytest.raises(QueryTimeoutError):
            deadline.check()  # 100th unit drains the credit

    def test_check_cost_weights_the_stride(self):
        clock = FakeClock()
        deadline = Deadline(10.0, stride=100, clock=clock)
        clock.advance(1.0)
        with pytest.raises(QueryTimeoutError):
            deadline.check(cost=100)  # one high-degree node drains at once

    def test_nonpositive_cost_still_makes_progress(self):
        clock = FakeClock()
        deadline = Deadline(10.0, stride=2, clock=clock)
        clock.advance(1.0)
        deadline.check(cost=0)
        with pytest.raises(QueryTimeoutError):
            deadline.check(cost=-5)  # counted as 1 unit each, never stalls

    def test_bound_counters_receive_partial_work_marker(self):
        counters = OperationCounters()
        deadline = expired_deadline().bind(counters)
        with pytest.raises(QueryTimeoutError) as excinfo:
            deadline.checkpoint()
        assert counters.extras["deadline_hit"] == 1.0
        assert excinfo.value.counters is counters

    def test_elapsed_and_default_stride(self):
        clock = FakeClock(5.0)
        deadline = Deadline(1000.0, clock=clock)
        assert deadline.stride == DEFAULT_CHECK_STRIDE
        clock.advance(0.25)
        assert deadline.elapsed_ms() == pytest.approx(250.0)
        assert deadline.expires_at == pytest.approx(6.0)


class TestEstimatorDeadlines:
    """Every unbounded loop trips an already-expired deadline promptly."""

    def _assert_trips(self, excinfo):
        error = excinfo.value
        assert error.timeout_ms == 10.0
        assert error.counters is not None
        assert error.counters.extras["deadline_hit"] == 1.0

    def test_hk_relax(self, tiny_grid, default_params):
        with pytest.raises(QueryTimeoutError) as excinfo:
            hk_relax(tiny_grid, 0, default_params, deadline=expired_deadline())
        self._assert_trips(excinfo)

    def test_hk_push(self, tiny_grid, default_params):
        with pytest.raises(QueryTimeoutError) as excinfo:
            hk_push_hkpr(tiny_grid, 0, default_params, deadline=expired_deadline())
        self._assert_trips(excinfo)

    def test_hk_push_plus(self, tiny_grid, default_params):
        with pytest.raises(QueryTimeoutError) as excinfo:
            hk_push_plus_hkpr(
                tiny_grid, 0, default_params, deadline=expired_deadline()
            )
        self._assert_trips(excinfo)

    def test_tea(self, tiny_grid, default_params):
        with pytest.raises(QueryTimeoutError) as excinfo:
            tea(tiny_grid, 0, default_params, rng=3, deadline=expired_deadline())
        self._assert_trips(excinfo)

    def test_tea_plus(self, tiny_grid, default_params):
        with pytest.raises(QueryTimeoutError) as excinfo:
            tea_plus(
                tiny_grid, 0, default_params, rng=3, deadline=expired_deadline()
            )
        self._assert_trips(excinfo)

    def test_monte_carlo_walk_phase(self, tiny_grid, default_params):
        with pytest.raises(QueryTimeoutError) as excinfo:
            monte_carlo_hkpr(
                tiny_grid, 0, default_params, rng=3, num_walks=100,
                deadline=expired_deadline(),
            )
        self._assert_trips(excinfo)

    def test_cluster_hkpr_walk_phase(self, tiny_grid, default_params):
        with pytest.raises(QueryTimeoutError) as excinfo:
            cluster_hkpr(
                tiny_grid, 0, default_params, rng=3, num_walks=100,
                deadline=expired_deadline(),
            )
        self._assert_trips(excinfo)

    def test_nibble(self, tiny_grid):
        with pytest.raises(QueryTimeoutError) as excinfo:
            nibble_hkpr(tiny_grid, 0, steps=5, deadline=expired_deadline())
        self._assert_trips(excinfo)

    def test_pr_nibble(self, tiny_grid):
        with pytest.raises(QueryTimeoutError) as excinfo:
            pr_nibble_hkpr(tiny_grid, 0, eps=1e-6, deadline=expired_deadline())
        self._assert_trips(excinfo)

    def test_fora_push_phase(self, tiny_grid):
        with pytest.raises(QueryTimeoutError) as excinfo:
            fora(tiny_grid, 0, rng=3, max_walks=100, deadline=expired_deadline())
        self._assert_trips(excinfo)

    def test_mc_ppr_walk_phase(self, tiny_grid):
        with pytest.raises(QueryTimeoutError) as excinfo:
            monte_carlo_ppr(
                tiny_grid, 0, rng=3, num_walks=100, deadline=expired_deadline()
            )
        self._assert_trips(excinfo)

    def test_generous_deadline_leaves_results_byte_identical(
        self, tiny_grid, default_params
    ):
        """Deadline checks are pure clock reads: with a deadline that never
        trips, every estimate matches the undeadlined run exactly."""
        bounded = hk_relax(
            tiny_grid, 0, default_params, deadline=Deadline(3_600_000.0)
        )
        unbounded = hk_relax(tiny_grid, 0, default_params)
        assert bounded.estimates.to_dict() == unbounded.estimates.to_dict()

        bounded = pr_nibble_hkpr(
            tiny_grid, 0, eps=1e-5, deadline=Deadline(3_600_000.0)
        )
        unbounded = pr_nibble_hkpr(tiny_grid, 0, eps=1e-5)
        assert bounded.estimates.to_dict() == unbounded.estimates.to_dict()
        assert (
            bounded.counters.push_operations == unbounded.counters.push_operations
        )

        bounded = tea_plus(
            tiny_grid, 0, default_params, rng=11, deadline=Deadline(3_600_000.0)
        )
        unbounded = tea_plus(tiny_grid, 0, default_params, rng=11)
        assert bounded.estimates.to_dict() == unbounded.estimates.to_dict()


class TestMaxPushesCap:
    def test_hk_relax_cap_is_exact(self, medium_powerlaw, default_params):
        """The cap is enforced mid-neighbor-loop: previously a single
        high-degree node could overshoot ``max_pushes`` by its degree."""
        capped = hk_relax(medium_powerlaw, 0, default_params, max_pushes=100)
        assert capped.counters.push_operations == 100
        assert capped.counters.extras["push_cap_hit"] == 1.0

    def test_cap_not_reported_when_unreached(self, tiny_grid, default_params):
        result = hk_relax(tiny_grid, 0, default_params, max_pushes=10_000_000)
        assert "push_cap_hit" not in result.counters.extras
