"""Pluggable execution backends for the walk phases of every estimator.

The estimators in :mod:`repro.hkpr` and :mod:`repro.ppr` all share the same
hot loop: run many independent random walks and accumulate their endpoints.
How those walks are *executed* is an implementation detail that is
independent of the algorithms' correctness, so it lives behind the
:class:`Backend` protocol:

* ``"reference"`` (:mod:`repro.engine.reference`) — one scalar Python loop
  per walk, delegating to the original per-walk primitives.  Slow but
  trivially auditable against the paper's pseudo-code; the parity baseline
  for every other backend.
* ``"vectorized"`` (:mod:`repro.engine.vectorized`) — level-synchronous
  NumPy kernels that advance *all* pending walks one hop per iteration with
  CSR fancy-indexing.  The default.
* ``"parallel"`` (:mod:`repro.engine.parallel`) — a persistent
  multiprocessing pool running the vectorized kernels on per-worker shards
  over shared-memory CSR arrays, with independent per-worker RNG streams
  spawned via ``np.random.SeedSequence`` (reproducible per
  ``(seed, worker count)``).
* ``"numba"`` (:mod:`repro.engine.numba_backend`) — JIT-compiled
  scalar-loop kernels; registered only when :mod:`numba` imports.

A backend must satisfy three invariants (enforced by the parity suite in
``tests/test_engine.py``):

1. **Distributional equivalence** — for every kernel, the returned endpoint
   of each walk follows exactly the distribution of the corresponding
   scalar primitive (hop-conditioned heat kernel walk, Poisson-length walk,
   geometric restart walk).
2. **Counter accounting** — ``counters.random_walks`` increases by the batch
   size and ``counters.walk_steps`` by the total number of traversed edges.
3. **Shape discipline** — the result is an ``int64`` array with one endpoint
   per requested walk, in order; an empty batch returns an empty array and
   draws nothing from ``rng``.

Backends are selected per call (``tea(..., backend="reference")``), per
process (:func:`set_default_backend` or the ``REPRO_BACKEND`` environment
variable), or temporarily (:func:`use_backend`).
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from contextlib import contextmanager
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.exceptions import ParameterError

if TYPE_CHECKING:  # imported lazily to keep this module import-cycle free
    from repro.graph.graph import Graph
    from repro.hkpr.poisson import PoissonWeights
    from repro.utils.counters import OperationCounters

#: Environment variable consulted for the initial default backend.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Backend used when neither $REPRO_BACKEND nor set_default_backend chose one.
_FALLBACK_BACKEND = "vectorized"

#: Maximum walks the estimators submit to a kernel per invocation.  Bounds
#: the peak memory of a walk phase (a few int64/float arrays of this length)
#: while keeping each batch large enough to amortize the per-level Python
#: overhead of the vectorized kernels.
WALK_CHUNK_SIZE = 1 << 20


def chunk_sizes(total: int, chunk: int | None = None) -> Iterator[int]:
    """Yield batch sizes covering ``total`` walks, each at most ``chunk``.

    ``chunk`` defaults to the module-level :data:`WALK_CHUNK_SIZE` (read at
    call time, so it can be tuned per process).
    """
    if chunk is None:
        chunk = WALK_CHUNK_SIZE
    if chunk < 1:
        raise ParameterError(f"chunk size must be >= 1, got {chunk}")
    remaining = total
    while remaining > 0:
        size = min(remaining, chunk)
        yield size
        remaining -= size


@runtime_checkable
class Backend(Protocol):
    """Execution engine for the random-walk phases of the estimators.

    Beyond the three required kernels, backends may advertise *optional*
    capabilities (deliberately not part of this protocol, so minimal
    backends remain valid):

    * ``supports_step_counts`` — the kernels accept a per-walk
      ``step_counts`` out-array for exact fused-batch accounting.
    * ``supports_fused`` plus ``fused_push_walk(graph, group, rng, *,
      want_steps=False)`` — one-pass fused execution of a multi-query
      group (:mod:`repro.engine.fused`): sample each walk's start from its
      query's residue distribution and run the walk in the same kernel
      call, returning ``(ends, per_walk_steps)``.
      :func:`~repro.engine.multi.execute_plans` routes eligible plans
      through it and falls back to the task path otherwise.
    """

    name: str

    def walk_batch(
        self,
        graph: Graph,
        start_nodes: np.ndarray,
        hop_offsets: np.ndarray,
        weights: PoissonWeights,
        rng: np.random.Generator,
        *,
        counters: OperationCounters | None = None,
    ) -> np.ndarray:
        """Run one hop-conditioned heat kernel walk per entry (Algorithm 2)."""
        ...

    def poisson_walk_batch(
        self,
        graph: Graph,
        start_nodes: np.ndarray,
        weights: PoissonWeights,
        rng: np.random.Generator,
        *,
        max_length: int | None = None,
        counters: OperationCounters | None = None,
    ) -> np.ndarray:
        """Run one Poisson(t)-length walk per entry (Monte-Carlo / ClusterHKPR)."""
        ...

    def geometric_walk_batch(
        self,
        graph: Graph,
        start_nodes: np.ndarray,
        alpha: float,
        rng: np.random.Generator,
        *,
        counters: OperationCounters | None = None,
    ) -> np.ndarray:
        """Run one restart-probability-``alpha`` walk per entry (FORA / PPR)."""
        ...


_BACKENDS: dict[str, Backend] = {}
_default_backend_name: str | None = None


def as_int_array(values) -> np.ndarray:
    """Normalize walk-start / hop-offset input to a 1-D ``int64`` array."""
    return np.atleast_1d(np.asarray(values, dtype=np.int64))


def register_backend(backend: Backend, *, name: str | None = None) -> None:
    """Add ``backend`` to the registry under ``name`` (default: its own name).

    Registering an existing name overwrites it.
    """
    _BACKENDS[name or backend.name] = backend


def unregister_backend(name: str) -> Backend:
    """Remove and return the backend registered under ``name``.

    If ``name`` is the current default, the default resets and is
    re-resolved (env var, then fallback) on next use.  Primarily for tests
    and plugin teardown.
    """
    global _default_backend_name
    if name not in _BACKENDS:
        raise ParameterError(
            f"unknown backend {name!r}; expected one of {available_backends()}"
        )
    if _default_backend_name == name:
        _default_backend_name = None
    return _BACKENDS.pop(name)


def backend_descriptions() -> dict[str, str]:
    """Name -> one-line summary for every registered backend (sorted)."""
    out: dict[str, str] = {}
    for name in available_backends():
        backend = _BACKENDS[name]
        summary = getattr(backend, "description", "")
        if not summary:
            doc = (type(backend).__doc__ or "").strip()
            summary = doc.splitlines()[0] if doc else ""
        out[name] = summary
    return out


def available_backends() -> list[str]:
    """Sorted names of all registered backends."""
    return sorted(_BACKENDS)


def default_backend_name() -> str:
    """Name of the process-wide default backend."""
    global _default_backend_name
    if _default_backend_name is None:
        requested = os.environ.get(BACKEND_ENV_VAR, _FALLBACK_BACKEND)
        if requested not in _BACKENDS:
            raise ParameterError(
                f"unknown backend {requested!r} in ${BACKEND_ENV_VAR}; "
                f"expected one of {available_backends()}"
            )
        _default_backend_name = requested
    return _default_backend_name


def set_default_backend(name: str) -> str:
    """Set the process-wide default backend; returns the previous name."""
    global _default_backend_name
    if name not in _BACKENDS:
        raise ParameterError(
            f"unknown backend {name!r}; expected one of {available_backends()}"
        )
    try:
        previous = default_backend_name()
    except ParameterError:
        # An invalid $REPRO_BACKEND must not stop an explicit override; the
        # documented fallback stands in as "previous" so use_backend() does
        # not permanently install its temporary backend on restore.
        previous = _FALLBACK_BACKEND
    _default_backend_name = name
    return previous


def get_backend(backend: str | Backend | None = None) -> Backend:
    """Resolve a backend argument (name, instance, or ``None`` = default)."""
    if backend is None:
        return _BACKENDS[default_backend_name()]
    if isinstance(backend, str):
        if backend not in _BACKENDS:
            raise ParameterError(
                f"unknown backend {backend!r}; expected one of {available_backends()}"
            )
        return _BACKENDS[backend]
    # Fail at the call boundary, not deep inside a walk phase: a class
    # (instead of an instance) or an unrelated object are both mistakes a
    # caller should hear about as a ParameterError.
    if isinstance(backend, type) or not isinstance(backend, Backend):
        raise ParameterError(
            f"backend must be a name or a Backend instance, got {backend!r}"
        )
    return backend


@contextmanager
def use_backend(name: str) -> Iterator[Backend]:
    """Temporarily make ``name`` the default backend (tests, benchmarks)."""
    previous = set_default_backend(name)
    try:
        yield _BACKENDS[name]
    finally:
        set_default_backend(previous)


from repro.engine.fused import (  # noqa: E402
    FusedGroup,
    FusedQuery,
    fusion_disabled,
    fusion_enabled,
    run_fused_queries,
    sample_fused_starts,
    set_fusion_enabled,
    supports_fused,
)
from repro.engine.multi import (  # noqa: E402
    WalkPlan,
    WalkTask,
    execute_plans,
    run_walk_tasks,
)
from repro.engine.numba_backend import (  # noqa: E402
    NUMBA_AVAILABLE,
    NumbaBackend,
    numba_available,
)
from repro.engine.parallel import ParallelBackend  # noqa: E402
from repro.engine.reference import ReferenceBackend  # noqa: E402
from repro.engine.vectorized import VectorizedBackend  # noqa: E402

register_backend(ReferenceBackend())
register_backend(VectorizedBackend())
register_backend(ParallelBackend())
if NUMBA_AVAILABLE:
    register_backend(NumbaBackend())

__all__ = [
    "BACKEND_ENV_VAR",
    "Backend",
    "FusedGroup",
    "FusedQuery",
    "NUMBA_AVAILABLE",
    "NumbaBackend",
    "ParallelBackend",
    "ReferenceBackend",
    "VectorizedBackend",
    "WALK_CHUNK_SIZE",
    "WalkPlan",
    "WalkTask",
    "available_backends",
    "backend_descriptions",
    "chunk_sizes",
    "default_backend_name",
    "execute_plans",
    "fusion_disabled",
    "fusion_enabled",
    "get_backend",
    "numba_available",
    "register_backend",
    "run_fused_queries",
    "run_walk_tasks",
    "sample_fused_starts",
    "set_default_backend",
    "set_fusion_enabled",
    "supports_fused",
    "unregister_backend",
    "use_backend",
]
