"""Declarative estimator specifications.

An :class:`EstimatorSpec` is the single description of one estimation
method: its canonical name and aliases, a declarative parameter schema
(:class:`ParamSpec` — types, bounds, defaults, error messages), capability
flags (``fusible``, ``deterministic``, ``sweepable``, ``backend_aware``,
``family``), the callable that answers a single query, an optional plan
builder for the serving layer, and an admission-control walk estimate.

Every query surface of the package — :func:`repro.clustering.local.local_cluster`,
the service planner, the CLI, and the benchmark harness — dispatches through
these specs (see :mod:`repro.estimators.registry`), so registering one spec
makes a method reachable everywhere at once.
"""

from __future__ import annotations

import inspect
import math
import weakref
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.exceptions import ParameterError
from repro.graph.graph import Graph
from repro.hkpr.params import HKPRParams, default_delta
from repro.hkpr.poisson import PoissonWeights

#: Valid values of :attr:`EstimatorSpec.family`.
FAMILIES = ("hkpr", "ppr", "baseline")

#: Keyword-only estimator arguments that are infrastructure, not method
#: parameters: they never appear in a spec's schema and are supplied by the
#: dispatching surface (rng by the caller, backend by the engine selection,
#: deadline by the serving layer's admission control).
INFRASTRUCTURE_KWARGS = frozenset({"rng", "backend", "weights", "counters", "deadline"})


def _cast_bool(value: Any) -> bool:
    """Boolean cast that survives JSON strings (``bool("false")`` is True)."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)) and value in (0, 1):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("true", "1", "yes"):
            return True
        if lowered in ("false", "0", "no"):
            return False
    raise ValueError(f"not a boolean: {value!r}")


_CASTS: dict[str, Callable[[Any], Any]] = {
    "int": int,
    "float": float,
    "bool": _cast_bool,
}


@dataclass(frozen=True)
class ParamSpec:
    """One declarative method parameter: type, bounds, default, help text.

    ``default=None`` means the estimator derives the value itself (for
    example the theory-driven walk count, or ``delta = 1/n``); the schema
    records that with ``default_doc``.

    ``feeds`` says where a supplied value goes when a query is dispatched:
    ``"params"`` fields are collected into the shared :class:`HKPRParams`
    object, ``"kwargs"`` fields are forwarded to the estimator as keyword
    arguments.
    """

    name: str
    type: str = "float"  # one of "int" | "float" | "bool"
    default: Any = None
    default_doc: str = ""
    doc: str = ""
    minimum: float | None = None
    maximum: float | None = None
    exclusive_minimum: bool = False
    exclusive_maximum: bool = False
    feeds: str = "kwargs"  # "params" (HKPRParams field) or "kwargs"

    def __post_init__(self) -> None:
        if self.type not in _CASTS:
            raise ValueError(f"unknown param type {self.type!r} for {self.name!r}")
        if self.feeds not in ("params", "kwargs"):
            raise ValueError(f"invalid feeds {self.feeds!r} for {self.name!r}")

    def cast(self, value: Any) -> Any:
        """Canonicalize ``value`` to this parameter's type."""
        return _CASTS[self.type](value)

    def in_range(self, value: Any) -> bool:
        """Whether a (cast) value satisfies the declared bounds."""
        if self.type == "bool":
            return True
        if self.minimum is not None:
            if self.exclusive_minimum and not value > self.minimum:
                return False
            if not self.exclusive_minimum and not value >= self.minimum:
                return False
        if self.maximum is not None:
            if self.exclusive_maximum and not value < self.maximum:
                return False
            if not self.exclusive_maximum and not value <= self.maximum:
                return False
        return True

    def range_text(self) -> str:
        """Human-readable bound description (used in help/error text)."""
        if self.type == "bool":
            return "true|false"
        parts = []
        if self.minimum is not None:
            parts.append((">" if self.exclusive_minimum else ">=") + f" {self.minimum:g}")
        if self.maximum is not None:
            parts.append(("<" if self.exclusive_maximum else "<=") + f" {self.maximum:g}")
        return " and ".join(parts) if parts else "any"

    def default_text(self) -> str:
        """The default rendered for help output."""
        if self.default is not None:
            return f"{self.default:g}" if isinstance(self.default, float) else str(self.default)
        return self.default_doc or "auto"

    def describe(self) -> dict:
        """JSON-able schema entry (the ``/methods`` payload shape)."""
        return {
            "name": self.name,
            "type": self.type,
            "default": self.default,
            "default_doc": self.default_doc or None,
            "range": self.range_text(),
            "doc": self.doc,
        }


class DirectPlan:
    """A plan whose work already happened: zero walk tasks, stored result.

    The uniform plan shape (``tasks``/``counters``/``finalize``) lets the
    serving layer treat deterministic and already-executed methods exactly
    like fusible ones (see :mod:`repro.engine.multi`).
    """

    tasks = ()
    estimated_walks = 0

    def __init__(self, result) -> None:
        self._result = result
        self.counters = result.counters

    def finalize(self, endpoints) -> object:
        return self._result


@dataclass(frozen=True)
class EstimatorSpec:
    """The complete declarative description of one estimation method."""

    #: Canonical method name (what every surface displays and caches under).
    name: str
    #: Estimator family: ``"hkpr"``, ``"ppr"`` or ``"baseline"``.
    family: str
    #: One-line summary shown by ``repro-cli methods`` and ``GET /methods``.
    doc: str
    #: Declarative parameter schema.
    params: tuple[ParamSpec, ...] = ()
    #: Alternative accepted spellings, resolved to :attr:`name`.
    aliases: tuple[str, ...] = ()
    #: Walk phase decomposes into :class:`repro.engine.multi.WalkTask`\ s
    #: that the micro-batcher may fuse across queries.
    fusible: bool = False
    #: Serving plans expose ``fused_queries()`` — the walk phase can run as
    #: a one-pass fused push+walk kernel (:mod:`repro.engine.fused`) on
    #: backends advertising ``supports_fused``, sampling each walk's start
    #: from the residue distribution inside the kernel.
    fused_sampling: bool = False
    #: Result is a pure function of the request (no randomness), so even
    #: rng-pinned service requests are cache-eligible.
    deterministic: bool = False
    #: Produces a diffusion vector that a sweep cut (and the service's
    #: top-k ranking) can consume.  Flow-based baselines are not sweepable.
    sweepable: bool = True
    #: Accepts a ``backend=`` keyword selecting the walk engine.
    backend_aware: bool = False
    #: Single-query estimator ``(graph, seed[, params], *, ...) -> HKPRResult``.
    estimate_fn: Callable | None = None
    #: Flow-baseline runner ``(graph, seed, **kwargs) -> BaselineClusteringResult``.
    cluster_fn: Callable | None = None
    #: Serving-layer plan builder
    #: ``(graph, seed, params_dict, rng, weights_for) -> WalkPlan``;
    #: ``None`` falls back to a :class:`DirectPlan` around :meth:`estimate`.
    plan_fn: Callable | None = None
    #: Admission-control walk estimate ``(graph, params_dict) -> int``;
    #: ``None`` means the method performs no random walks.
    walks_fn: Callable | None = None
    #: Whether ``walks_fn`` predicts the *actual* walk count (tight) or a
    #: pessimistic upper bound.  Push-then-walk methods (tea, tea+, fora)
    #: run ``alpha * omega`` walks with ``alpha`` often near zero, so their
    #: omega-based estimates are upper bounds; the service only
    #: hard-rejects single over-budget queries when the estimate is tight.
    walks_tight: bool = True
    #: ``estimate_fn`` takes the shared :class:`HKPRParams` object as its
    #: third positional argument (the HKPR-estimator calling convention).
    takes_params_object: bool = False
    #: ``estimate_fn`` accepts an ``rng=`` keyword.
    takes_rng: bool = True
    #: ``estimate_fn`` accepts a ``deadline=`` keyword
    #: (:class:`repro.utils.Deadline`) and checks it cooperatively from its
    #: unbounded loops.  Methods with bounded, schema-capped work (``exact``,
    #: ``simple-local``) leave this False and silently ignore deadlines.
    takes_deadline: bool = False
    #: For methods without ``takes_params_object``: translate a supplied
    #: :class:`HKPRParams` into estimator kwargs (``None`` = not translatable).
    params_adapter: Callable[[HKPRParams], dict] | None = None
    #: Internal: schema indexed by name (derived in ``__post_init__``).
    _schema: dict[str, ParamSpec] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(f"{self.name!r}: family must be one of {FAMILIES}")
        if not (self.doc and self.doc.strip()):
            raise ValueError(f"{self.name!r}: spec docstring must not be empty")
        if self.estimate_fn is None and self.cluster_fn is None:
            raise ValueError(f"{self.name!r}: needs estimate_fn or cluster_fn")
        if self.sweepable and self.estimate_fn is None:
            raise ValueError(f"{self.name!r}: sweepable methods need estimate_fn")
        names = [p.name for p in self.params]
        if len(names) != len(set(names)):
            raise ValueError(f"{self.name!r}: duplicate parameter names")
        object.__setattr__(self, "_schema", {p.name: p for p in self.params})

    # -------------------------------------------------------------- #
    # Schema
    # -------------------------------------------------------------- #
    @property
    def servable(self) -> bool:
        """Whether the online service can answer this method (needs a
        rankable diffusion vector)."""
        return self.sweepable and self.estimate_fn is not None

    @property
    def accepts_params_object(self) -> bool:
        """Whether an :class:`HKPRParams` object is meaningful for this method."""
        return self.takes_params_object or self.params_adapter is not None

    def param_names(self) -> tuple[str, ...]:
        """Names of all declared parameters, in declaration order."""
        return tuple(p.name for p in self.params)

    def _feeds_params(self, name: str) -> bool:
        """Whether a declared parameter feeds the shared HKPRParams object."""
        param = self._schema.get(name)
        return param is not None and param.feeds == "params"

    def validate_params(self, raw: dict | None) -> dict:
        """Canonicalize a raw parameter dict against the schema.

        This is the one code path every surface uses for parameter
        validation: unknown names, bad types and out-of-range values all
        fail here with messages listing the valid options.
        """
        normalized: dict = {}
        for key, value in (raw or {}).items():
            param = self._schema.get(key)
            if param is None:
                raise ParameterError(
                    f"unknown parameter {key!r} for method {self.name!r}; "
                    f"allowed: {sorted(self._schema)}"
                )
            try:
                cast_value = param.cast(value)
            except (TypeError, ValueError):
                raise ParameterError(
                    f"parameter {key!r} has invalid value {value!r} "
                    f"(expected {param.type})"
                ) from None
            if not param.in_range(cast_value):
                raise ParameterError(
                    f"parameter {key!r} is out of range: {value!r} "
                    f"(expected {param.range_text()})"
                )
            normalized[key] = cast_value
        return normalized

    def with_defaults(self, params: dict) -> dict:
        """``params`` plus every declared concrete default.

        Plan builders and walk estimators read fallback values from here
        rather than re-hardcoding literals, so the declared schema stays
        the single source of defaults.  Parameters whose default is derived
        by the estimator (``default=None``) are left absent.
        """
        merged = {
            param.name: param.default
            for param in self.params
            if param.default is not None
        }
        merged.update(params)
        return merged

    def split_params(self, graph: Graph, params: dict) -> tuple[HKPRParams | None, dict]:
        """Split a validated parameter dict into (HKPRParams, kwargs).

        Fields whose :attr:`ParamSpec.feeds` is ``"params"`` populate the
        shared :class:`HKPRParams` object (with the paper's ``delta = 1/n``
        default); the rest are estimator keyword arguments.  Methods that do
        not take a params object get ``(None, dict(params))``.
        """
        if not self.takes_params_object:
            return None, dict(params)
        fields = {}
        kwargs = {}
        for key, value in params.items():
            if self._schema[key].feeds == "params":
                fields[key] = value
            else:
                kwargs[key] = value
        fields.setdefault("delta", default_delta(graph))
        return HKPRParams(**fields), kwargs

    # -------------------------------------------------------------- #
    # Dispatch
    # -------------------------------------------------------------- #
    def estimate(
        self,
        graph: Graph,
        seed_node: int,
        *,
        params: HKPRParams | None = None,
        rng=None,
        estimator_kwargs: dict | None = None,
        backend: str | None = None,
        deadline=None,
    ):
        """Answer one query, returning the unified :class:`~repro.hkpr.result.HKPRResult`.

        The single calling convention behind ``local_cluster``, the bench
        harness, ``batch_hkpr`` and the service's direct plans: signature
        differences between estimators (params object or not, rng or not,
        backend-aware or not) are absorbed here.  Declared knobs that feed
        the shared :class:`HKPRParams` object (``t``, ``eps_r``, ...) may
        be passed in ``estimator_kwargs`` like any other parameter; they
        are folded into the params object (overriding its fields) rather
        than forwarded to the estimator, so the declarative schema is the
        calling convention on every surface.
        """
        if self.estimate_fn is None:
            raise ParameterError(
                f"method {self.name!r} does not produce a diffusion vector; "
                f"use its clustering entry point"
            )
        kwargs = dict(estimator_kwargs or {})
        # Infrastructure keys (rng/backend/...) are supplied by the caller
        # or folded in below and are deliberately outside the schema; every
        # declared knob goes through the single validation path, so unknown
        # names and out-of-range values fail identically on every surface.
        infrastructure = {
            key: kwargs.pop(key) for key in list(kwargs)
            if key in INFRASTRUCTURE_KWARGS
        }
        kwargs = self.validate_params(kwargs)
        # rng/backend follow the same semantics as their dedicated
        # arguments: an rng for a deterministic method or a backend for a
        # backend-unaware one is ignored, never a raw TypeError.  The other
        # reserved infrastructure names have no estimator-level meaning, so
        # passing them is an error, not a silent drop.
        for key in infrastructure:
            if key not in ("rng", "backend", "deadline"):
                raise ParameterError(
                    f"infrastructure argument {key!r} is not accepted by "
                    f"method {self.name!r}; allowed parameters: "
                    f"{sorted(self._schema)}"
                )
        if self.takes_rng and "rng" in infrastructure:
            kwargs["rng"] = infrastructure["rng"]
        if self.backend_aware and "backend" in infrastructure:
            kwargs["backend"] = infrastructure["backend"]
        if self.takes_deadline and "deadline" in infrastructure:
            kwargs["deadline"] = infrastructure["deadline"]
        if backend is not None and self.backend_aware:
            kwargs.setdefault("backend", backend)
        if self.takes_rng:
            kwargs.setdefault("rng", rng)
        if deadline is not None and self.takes_deadline:
            kwargs.setdefault("deadline", deadline)
        if self.takes_params_object:
            fields = {
                key: kwargs.pop(key)
                for key in [k for k in kwargs if self._feeds_params(k)]
            }
            if params is None:
                fields.setdefault("delta", default_delta(graph))
                params = HKPRParams(**fields)
            elif fields:
                params = replace(params, **fields)
            return self.estimate_fn(graph, seed_node, params, **kwargs)
        if params is not None:
            if self.params_adapter is None:
                raise ParameterError(
                    f"method {self.name!r} does not take HKPRParams; pass its "
                    f"knobs via estimator_kwargs (allowed: {sorted(self._schema)})"
                )
            for key, value in self.params_adapter(params).items():
                kwargs.setdefault(key, value)
        return self.estimate_fn(graph, seed_node, **kwargs)

    def cluster(self, graph: Graph, seed_node: int, **kwargs):
        """Run a flow-baseline method (non-sweepable specs only).

        Kwargs go through the same declarative validation as
        :meth:`estimate`, so flow baselines report schema errors
        identically to every other method.
        """
        if self.cluster_fn is None:
            raise ParameterError(
                f"method {self.name!r} has no flow-clustering entry point"
            )
        return self.cluster_fn(graph, seed_node, **self.validate_params(kwargs))

    def estimate_walks(self, graph: Graph, params: dict) -> int:
        """Admission-control estimate of the walks one query will run."""
        if self.walks_fn is None:
            return 0
        return max(0, int(self.walks_fn(graph, params)))

    def build_plan(
        self,
        graph: Graph,
        seed_node: int,
        params: dict,
        rng,
        *,
        weights_for: Callable[[float], PoissonWeights] | None = None,
        deadline=None,
    ):
        """Build this query's serving plan (``WalkPlan`` or :class:`DirectPlan`).

        ``weights_for`` supplies (possibly cached) :class:`PoissonWeights`
        per heat constant; the service passes the graph entry's warm cache.
        The optional ``deadline`` bounds any deterministic work done at plan
        construction (push phases, direct execution); plan builders that
        predate the deadline contract are still called with the legacy
        five-argument shape.
        """
        if weights_for is None:
            weights_for = PoissonWeights
        if self.plan_fn is not None:
            if _accepts_deadline(self.plan_fn):
                return self.plan_fn(
                    graph, seed_node, params, rng, weights_for, deadline=deadline
                )
            return self.plan_fn(graph, seed_node, params, rng, weights_for)
        hkpr_params, kwargs = self.split_params(graph, params)
        result = self.estimate(
            graph, seed_node, params=hkpr_params, rng=rng,
            estimator_kwargs=kwargs, deadline=deadline,
        )
        return DirectPlan(result)

    # -------------------------------------------------------------- #
    # Introspection
    # -------------------------------------------------------------- #
    def describe(self) -> dict:
        """JSON-able description (``repro-cli methods`` / ``GET /methods``)."""
        return {
            "name": self.name,
            "family": self.family,
            "doc": self.doc,
            "aliases": list(self.aliases),
            "fusible": self.fusible,
            "fused_sampling": self.fused_sampling,
            "deterministic": self.deterministic,
            "sweepable": self.sweepable,
            "servable": self.servable,
            "backend_aware": self.backend_aware,
            "params": [p.describe() for p in self.params],
        }

    def signature_kwargs(self) -> set[str]:
        """Keyword parameters of the underlying callable, minus infrastructure.

        Used by the registry-invariant tests to assert the declarative
        schema is complete (every real knob is declared) and sound (every
        declared kwarg is accepted).
        """
        target = self.estimate_fn if self.estimate_fn is not None else self.cluster_fn
        signature = inspect.signature(target)
        names = {
            name
            for name, parameter in signature.parameters.items()
            if parameter.kind == inspect.Parameter.KEYWORD_ONLY
        }
        return names - INFRASTRUCTURE_KWARGS


# ------------------------------------------------------------------ #
# Shared schema fragments (used by the catalog)
# ------------------------------------------------------------------ #
def hkpr_base_params(*, include_c: bool = False) -> tuple[ParamSpec, ...]:
    """The four (d, eps_r, delta)-query parameters shared by HKPR methods."""
    base = (
        ParamSpec("t", "float", default=5.0, minimum=0.0, exclusive_minimum=True,
                  doc="heat constant", feeds="params"),
        ParamSpec("eps_r", "float", default=0.5, minimum=0.0, maximum=1.0,
                  exclusive_minimum=True, exclusive_maximum=True,
                  doc="relative error bound", feeds="params"),
        ParamSpec("delta", "float", default=None, default_doc="1/n",
                  minimum=0.0, maximum=1.0, exclusive_minimum=True,
                  exclusive_maximum=True,
                  doc="significance threshold", feeds="params"),
        ParamSpec("p_f", "float", default=1e-6, minimum=0.0, maximum=1.0,
                  exclusive_minimum=True, exclusive_maximum=True,
                  doc="failure probability", feeds="params"),
    )
    if include_c:
        base = base + (
            ParamSpec("c", "float", default=2.5, minimum=0.0,
                      exclusive_minimum=True,
                      doc="hop-cap constant (Eq. 20)", feeds="params"),
        )
    return base


_DEADLINE_ACCEPTANCE: "weakref.WeakKeyDictionary[Callable, bool]" = (
    weakref.WeakKeyDictionary()
)


def _accepts_deadline(plan_fn: Callable) -> bool:
    """Whether a plan builder's signature accepts a ``deadline=`` keyword.

    Cached per callable so the signature inspection is paid once; builders
    registered before the deadline contract keep their five-argument shape.
    """
    try:
        cached = _DEADLINE_ACCEPTANCE.get(plan_fn)
    except TypeError:  # non-weakrefable callable
        cached = None
    if cached is not None:
        return cached
    try:
        parameters = inspect.signature(plan_fn).parameters
    except (TypeError, ValueError):  # builtins / odd callables
        accepts = False
    else:
        accepts = "deadline" in parameters or any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
        )
    try:
        _DEADLINE_ACCEPTANCE[plan_fn] = accepts
    except TypeError:
        pass
    return accepts


def ceil_int(value: float) -> int:
    """``ceil`` guarded against float overflow (admission estimates only)."""
    if value == math.inf:
        return 2**62
    return int(math.ceil(value))
