"""Tests for the NDCG ranking-accuracy metric."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.graph.generators import ring_graph
from repro.hkpr.exact import exact_hkpr
from repro.hkpr.params import HKPRParams
from repro.hkpr.result import HKPRResult
from repro.ranking.ndcg import dcg, ndcg, ndcg_of_estimate
from repro.utils.sparsevec import SparseVector


class TestDCG:
    def test_single_item(self):
        assert dcg([3.0]) == pytest.approx(3.0)

    def test_log_discount(self):
        assert dcg([1.0, 1.0]) == pytest.approx(1.0 + 1.0 / math.log2(3))

    def test_negative_relevance_rejected(self):
        with pytest.raises(ParameterError):
            dcg([1.0, -0.1])

    def test_order_matters(self):
        assert dcg([3.0, 1.0]) > dcg([1.0, 3.0])


class TestNDCG:
    def test_perfect_ranking_is_one(self):
        assert ndcg([5.0, 3.0, 1.0]) == pytest.approx(1.0)

    def test_reversed_ranking_below_one(self):
        assert ndcg([1.0, 3.0, 5.0]) < 1.0

    def test_all_zero_relevance_is_one_by_convention(self):
        assert ndcg([0.0, 0.0]) == 1.0

    def test_with_external_ideal_pool(self):
        # Ranking found two items but the ideal pool has a better third item.
        value = ndcg([2.0, 1.0], ideal_relevances=[5.0, 2.0, 1.0])
        assert value < 1.0

    def test_bounded_by_one(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            rel = rng.random(10).tolist()
            assert 0.0 <= ndcg(rel) <= 1.0


class TestNDCGOfEstimate:
    def test_exact_estimate_scores_one(self, small_ring, default_params):
        exact = exact_hkpr(small_ring, 0, default_params)
        truth = exact.to_dense(small_ring)
        assert ndcg_of_estimate(small_ring, exact, truth) == pytest.approx(1.0)

    def test_wrong_length_ground_truth_rejected(self, small_ring, default_params):
        exact = exact_hkpr(small_ring, 0, default_params)
        with pytest.raises(ParameterError):
            ndcg_of_estimate(small_ring, exact, np.zeros(3))

    def test_scrambled_estimate_scores_below_exact(self, default_params):
        graph = ring_graph(20)
        exact = exact_hkpr(graph, 0, default_params)
        truth = exact.to_dense(graph)
        # Build a deliberately bad estimate: reverse the ranking weights.
        ranking = exact.ranking(graph)
        scrambled_vec = SparseVector(
            {node: float(i + 1) for i, node in enumerate(ranking)}
        )
        scrambled = HKPRResult(estimates=scrambled_vec, seed=0, method="bad")
        good_score = ndcg_of_estimate(graph, exact, truth)
        bad_score = ndcg_of_estimate(graph, scrambled, truth)
        assert bad_score < good_score

    def test_k_cutoff(self, small_ring, default_params):
        exact = exact_hkpr(small_ring, 0, default_params)
        truth = exact.to_dense(small_ring)
        assert ndcg_of_estimate(small_ring, exact, truth, k=3) == pytest.approx(1.0)
