"""Tests for utility modules: RNG plumbing, timers, counters, sparse vectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.counters import OperationCounters
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.sparsevec import SparseVector
from repro.utils.timer import Timer


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(7).random(3)
        b = ensure_rng(7).random(3)
        assert np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_spawn_rngs_independent_and_deterministic(self):
        first = [g.random() for g in spawn_rngs(3, 4)]
        second = [g.random() for g in spawn_rngs(3, 4)]
        assert first == second
        assert len(set(first)) == 4


class TestTimer:
    def test_context_manager_accumulates(self):
        timer = Timer()
        with timer:
            sum(range(100))
        first = timer.elapsed
        with timer:
            sum(range(100))
        assert timer.elapsed >= first
        assert timer.elapsed_ms == pytest.approx(timer.elapsed * 1000.0)

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0


class TestOperationCounters:
    def test_record_and_total_work(self):
        counters = OperationCounters()
        counters.record_pushes(10)
        counters.record_walk(4)
        counters.record_walk(6)
        assert counters.push_operations == 10
        assert counters.random_walks == 2
        assert counters.walk_steps == 10
        assert counters.total_work == 20

    def test_merge(self):
        a = OperationCounters(push_operations=5, residue_entries=7)
        b = OperationCounters(push_operations=3, residue_entries=2)
        a.extras["x"] = 1.0
        b.extras["x"] = 2.0
        merged = a.merge(b)
        assert merged.push_operations == 8
        assert merged.residue_entries == 7
        assert merged.extras["x"] == 3.0

    def test_as_dict_contains_extras(self):
        counters = OperationCounters()
        counters.extras["omega"] = 12.5
        data = counters.as_dict()
        assert data["omega"] == 12.5
        assert "total_work" in data

    def test_memory_entries(self):
        counters = OperationCounters(residue_entries=4, reserve_entries=6)
        assert counters.memory_entries() == 10


class TestSparseVector:
    def test_missing_entries_are_zero(self):
        vec = SparseVector()
        assert vec[3] == 0.0
        assert 3 not in vec

    def test_set_and_get(self):
        vec = SparseVector({1: 0.5})
        vec[2] = 0.25
        assert vec[1] == 0.5
        assert vec[2] == 0.25
        assert len(vec) == 2

    def test_setting_zero_removes_entry(self):
        vec = SparseVector({1: 0.5})
        vec[1] = 0.0
        assert 1 not in vec
        assert vec.nnz() == 0

    def test_add(self):
        vec = SparseVector()
        vec.add(4, 0.1)
        vec.add(4, 0.2)
        assert vec[4] == pytest.approx(0.3)

    def test_add_cancelling_removes(self):
        vec = SparseVector({2: 1.0})
        vec.add(2, -1.0)
        assert 2 not in vec

    def test_sum_and_scale(self):
        vec = SparseVector({0: 0.25, 1: 0.75})
        assert vec.sum() == pytest.approx(1.0)
        doubled = vec.scale(2.0)
        assert doubled.sum() == pytest.approx(2.0)
        assert vec.sum() == pytest.approx(1.0)  # original untouched

    def test_scale_by_zero_gives_empty(self):
        vec = SparseVector({0: 1.0})
        assert vec.scale(0.0).nnz() == 0

    def test_copy_is_independent(self):
        vec = SparseVector({0: 1.0})
        clone = vec.copy()
        clone[0] = 2.0
        assert vec[0] == 1.0

    def test_dense_round_trip(self):
        vec = SparseVector({0: 0.5, 3: 0.5})
        dense = vec.to_dense(5)
        assert dense.shape == (5,)
        assert dense[3] == 0.5
        back = SparseVector.from_dense(dense)
        assert back.to_dict() == vec.to_dict()

    def test_to_dense_out_of_range(self):
        vec = SparseVector({10: 1.0})
        with pytest.raises(IndexError):
            vec.to_dense(5)

    def test_from_dense_tolerance(self):
        dense = np.array([1e-12, 0.5])
        vec = SparseVector.from_dense(dense, tol=1e-9)
        assert vec.nnz() == 1

    def test_iteration(self):
        vec = SparseVector({0: 0.1, 2: 0.2})
        assert set(vec.keys()) == {0, 2}
        assert sorted(vec.values()) == [pytest.approx(0.1), pytest.approx(0.2)]
        assert dict(vec.items()) == vec.to_dict()
