"""Service-layer integration tests for dynamic graphs.

Epoch bumps through :meth:`GraphRegistry.mutate`, one-code-path cache
invalidation (mutation and removal both evict via the registry hooks),
walk-index staleness, and the ``POST /graphs/<name>/edges`` HTTP endpoint.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.dynamic import DeltaGraph
from repro.exceptions import GraphError, ServiceError, WalkIndexError
from repro.graph.generators import chung_lu_graph, power_law_degree_sequence
from repro.index import build_walk_index
from repro.service import GraphRegistry, QueryService, ResultCache
from repro.service.http import serve_in_thread


@pytest.fixture
def graph():
    degs = power_law_degree_sequence(300, 2.5, 2, 25, seed=3)
    return chung_lu_graph(degs, seed=3, connected=False)


def _absent_edge(graph, start=0):
    u = start
    v = u + 1
    while graph.has_edge(u, v) or u == v:
        v += 1
    return [u, v]


class TestRegistryMutation:
    def test_mutate_bumps_epoch_and_swaps_snapshot(self, graph):
        registry = GraphRegistry()
        entry = registry.add_graph("g", graph)
        before = entry.graph
        edge = _absent_edge(graph)
        summary = registry.mutate("g", add=[edge])
        assert summary["epoch"] == 1 == entry.epoch
        assert summary["added"] == 1 and summary["removed"] == 0
        assert summary["num_edges"] == graph.num_edges + 1
        assert entry.graph is not before
        assert entry.graph.has_edge(*edge)
        assert not before.has_edge(*edge)  # old snapshot untouched
        assert registry.describe()[0]["epoch"] == 1

    def test_mutate_compacts_past_threshold(self, graph):
        registry = GraphRegistry()
        entry = registry.add_graph("g", graph)
        entry.compaction_threshold = 1
        e1, e2 = _absent_edge(graph, 0), _absent_edge(graph, 1)
        assert not registry.mutate("g", add=[e1])["compacted"]
        summary = registry.mutate("g", add=[e2])
        assert summary["compacted"] and summary["delta_edges"] == 0
        # the rebuilt base keeps the epoch for repair validation
        assert entry.graph.epoch == 2
        assert isinstance(entry.graph, DeltaGraph)
        assert entry.graph.delta_edges == 0

    def test_bad_batch_leaves_entry_untouched(self, graph):
        registry = GraphRegistry()
        entry = registry.add_graph("g", graph)
        with pytest.raises(GraphError):
            registry.mutate("g", add=[[0, 0]])
        assert entry.epoch == 0 and entry.graph is graph

    def test_remove_and_hooks_share_one_path(self, graph):
        registry = GraphRegistry()
        registry.add_graph("g", graph)
        invalidated = []
        registry.add_invalidation_hook(invalidated.append)
        registry.mutate("g", add=[_absent_edge(graph)])
        registry.remove("g")
        assert invalidated == ["g", "g"]
        with pytest.raises(ServiceError, match="unknown graph"):
            registry.get("g")
        with pytest.raises(ServiceError, match="unknown graph"):
            registry.remove("g")

    def test_weight_cache_epoch_guarded(self, graph):
        registry = GraphRegistry()
        entry = registry.add_graph("g", graph)
        warm = entry.poisson_weights(5.0)
        assert entry.poisson_weights(5.0) is warm
        registry.mutate("g", add=[_absent_edge(graph)])
        rebuilt = entry.poisson_weights(5.0)
        assert rebuilt is not warm
        assert entry.poisson_weights(5.0) is rebuilt


class TestIndexStaleness:
    def test_mutation_detaches_and_marks_stale(self, graph):
        registry = GraphRegistry()
        registry.add_graph("g", graph)
        index = build_walk_index(
            graph, num_hubs=4, walks_per_sketch=100, t_values=[5.0], rng=0
        )
        registry.attach_index("g", index)
        summary = registry.mutate("g", add=[_absent_edge(graph)])
        assert summary["index_detached"]
        entry = registry.get("g")
        assert entry.index is None and entry.stale_indexes == 1
        assert index.stale and index.describe()["stale"]
        hub = index.indexed_nodes()[0]
        with pytest.raises(WalkIndexError, match="stale walk index"):
            index.lookup("poisson", hub, 5.0)

    def test_stale_index_cannot_be_reattached(self, graph):
        registry = GraphRegistry()
        registry.add_graph("g", graph)
        index = build_walk_index(
            graph, num_hubs=2, walks_per_sketch=50, t_values=[5.0], rng=0
        )
        registry.mutate("g", add=[_absent_edge(graph)])
        with pytest.raises(WalkIndexError):
            registry.attach_index("g", index)

    def test_current_epoch_index_attaches_to_overlay(self, graph):
        """An index built against the *compacted* current overlay attaches:
        compaction is byte-identical, so the fingerprint matches."""
        registry = GraphRegistry()
        registry.add_graph("g", graph)
        registry.mutate("g", add=[_absent_edge(graph)])
        entry = registry.get("g")
        fresh = build_walk_index(
            entry.csr_graph(), num_hubs=2, walks_per_sketch=50,
            t_values=[5.0], rng=0,
        )
        registry.attach_index("g", fresh)
        assert entry.index is fresh


class TestServiceMutation:
    @pytest.fixture
    def service(self, graph):
        registry = GraphRegistry()
        registry.add_graph("g", graph)
        with QueryService(registry, max_batch=4, cache_entries=32, rng=5) as svc:
            yield svc

    def test_epoch_keys_and_eager_eviction(self, service, graph):
        first = service.query("g", "pr-nibble", 0, {"eps": 1e-3})
        assert service.query("g", "pr-nibble", 0, {"eps": 1e-3}).cached
        assert first.request.epoch == 0
        assert len(service.cache) == 1

        service.mutate_graph("g", add=[_absent_edge(graph)])
        # hook evicted the graph's group eagerly...
        assert len(service.cache) == 0
        # ...and the epoch in the key makes stale results unreachable anyway
        after = service.query("g", "pr-nibble", 0, {"eps": 1e-3})
        assert not after.cached
        assert after.request.epoch == 1
        assert after.request.cache_key()[:2] == ("g", 1)

    def test_walk_query_runs_on_overlay(self, service, graph):
        service.mutate_graph("g", add=[_absent_edge(graph)])
        entry = service.registry.get("g")
        assert isinstance(entry.graph, DeltaGraph)
        response = service.query(
            "g", "monte-carlo", 0, {"t": 5.0, "num_walks": 500}
        )
        assert response.result.support_size() > 0
        assert abs(response.result.estimates.sum() - 1.0) < 1e-9

    def test_remove_graph_evicts_cache(self, service, graph):
        service.query("g", "pr-nibble", 0, {"eps": 1e-3})
        assert len(service.cache) == 1
        service.remove_graph("g")
        assert len(service.cache) == 0
        with pytest.raises(ServiceError, match="unknown graph"):
            service.query("g", "pr-nibble", 0, {"eps": 1e-3})

    def test_stats_surface_epoch(self, service, graph):
        service.mutate_graph("g", add=[_absent_edge(graph)])
        storage = service.stats()["graph_storage"]["g"]
        assert storage["epoch"] == 1
        assert storage["delta_edges"] == 1
        assert storage["stale_indexes"] == 0

    def test_index_stale_metric_lands_in_service_registry(self, service, graph):
        index = build_walk_index(
            graph, num_hubs=2, walks_per_sketch=50, t_values=[5.0], rng=0
        )
        service.registry.attach_index("g", index)
        service.mutate_graph("g", add=[_absent_edge(graph)])
        exposition = service.render_metrics()
        assert 'index_stale_total{graph="g"} 1' in exposition


class TestInvalidateGroup:
    def test_counts_and_scopes_to_group(self):
        cache = ResultCache(16, group_of=lambda key: str(key[0]))
        cache.put(("a", 1), "x")
        cache.put(("a", 2), "y")
        cache.put(("b", 1), "z")
        assert cache.invalidate_group("a") == 2
        assert len(cache) == 1
        assert cache.get(("b", 1)) == "z"
        assert cache.invalidate_group("missing") == 0

    def test_no_group_fn_is_a_noop(self):
        cache = ResultCache(4)
        cache.put("k", "v")
        assert cache.invalidate_group("k") == 0
        assert cache.get("k") == "v"


class TestHTTPMutation:
    @pytest.fixture
    def server(self, graph):
        registry = GraphRegistry()
        registry.add_graph("g", graph)
        with QueryService(registry, max_batch=4, cache_entries=32, rng=5) as svc:
            httpd, _thread = serve_in_thread(svc, port=0)
            try:
                yield f"http://127.0.0.1:{httpd.server_address[1]}", svc
            finally:
                httpd.shutdown()

    @staticmethod
    def _post(base, path, payload):
        request = urllib.request.Request(
            base + path,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=10.0) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_post_edges_mutates_and_reports(self, server, graph):
        base, svc = server
        edge = _absent_edge(graph)
        status, summary = self._post(base, "/graphs/g/edges", {"add": [edge]})
        assert status == 200
        assert summary["epoch"] == 1
        assert summary["num_edges"] == graph.num_edges + 1
        status, summary = self._post(
            base, "/graphs/g/edges", {"remove": [edge]}
        )
        assert status == 200 and summary["epoch"] == 2
        assert summary["num_edges"] == graph.num_edges

    def test_post_edges_error_mapping(self, server, graph):
        base, _svc = server
        status, body = self._post(base, "/graphs/nope/edges", {"add": [[0, 1]]})
        assert status == 404 and "unknown graph" in body["error"]
        status, body = self._post(base, "/graphs/g/edges", {"add": [[0, 0]]})
        assert status == 400 and "self-loop" in body["error"]
        status, body = self._post(base, "/graphs/g/edges", {"bogus": 1})
        assert status == 400 and "unknown field" in body["error"]
        status, body = self._post(base, "/graphs/g/edges", {"add": "0,1"})
        assert status == 400 and "lists" in body["error"]
        status, body = self._post(base, "/graphs//edges", {"add": [[0, 1]]})
        assert status == 404

    def test_delete_graph(self, server, graph):
        base, svc = server
        request = urllib.request.Request(base + "/graphs/g", method="DELETE")
        with urllib.request.urlopen(request, timeout=10.0) as response:
            assert response.status == 200
            assert json.loads(response.read()) == {"removed": "g"}
        assert svc.registry.names() == []
        request = urllib.request.Request(base + "/graphs/g", method="DELETE")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10.0)
        assert excinfo.value.code == 404

    def test_queries_correct_across_mutation(self, server, graph):
        """The smoke scenario: query, mutate over HTTP, query again."""
        base, svc = server
        before = svc.query("g", "pr-nibble", 0, {"eps": 1e-3})
        edge = _absent_edge(graph)
        status, _ = self._post(base, "/graphs/g/edges", {"add": [edge]})
        assert status == 200
        after = svc.query("g", "pr-nibble", 0, {"eps": 1e-3})
        assert not after.cached
        assert after.request.epoch == 1
        # both are valid degree-normalized PPR approximations of their
        # own snapshot; the mutation touched the seed's component so the
        # estimates must be finite and normalized either way
        assert np.isfinite(list(after.result.estimates.values())).all()
