"""The undirected graph data structure used by every algorithm in this package.

The paper's algorithms are *local*: they touch only the neighborhoods of a
few nodes.  The dominant operations are therefore

* ``degree(v)``   — O(1),
* ``neighbors(v)`` — O(d(v)) contiguous slice,
* uniform sampling of a neighbor of ``v`` — O(1).

A compressed-sparse-row (CSR) layout over two NumPy arrays (``indptr`` and
``indices``) supports all three with minimal overhead, mirrors how the
original C++ implementation stores graphs, and keeps memory at
``O(n + m)`` integers.

Nodes are integers ``0 .. n-1``.  Graphs are simple (no self-loops, no
parallel edges) and undirected: every edge ``(u, v)`` appears in both
adjacency lists.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import EmptyGraphError, GraphError, NodeNotFoundError

Edge = tuple[int, int]


class Graph:
    """An immutable, simple, undirected graph in CSR form.

    Parameters
    ----------
    n:
        Number of nodes.  Nodes are ``0 .. n-1``.
    edges:
        Iterable of ``(u, v)`` pairs.  Self-loops and duplicate edges
        (in either orientation) are rejected unless ``dedupe=True``, in
        which case they are silently dropped.
    dedupe:
        If true, drop self-loops and duplicate edges instead of raising.

    Examples
    --------
    >>> g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
    >>> g.num_nodes, g.num_edges
    (4, 4)
    >>> sorted(g.neighbors(0))
    [1, 3]
    >>> g.degree(1)
    2
    """

    __slots__ = ("_indptr", "_indices", "_degrees", "_n", "_m", "_backing")

    def __init__(self, n: int, edges: Iterable[Edge], *, dedupe: bool = False) -> None:
        if n < 0:
            raise GraphError(f"number of nodes must be non-negative, got {n}")
        self._n = n = int(n)

        # Materialize the edges as an (m, 2) int64 array; every validation
        # and the CSR build below is a whole-array operation.
        if isinstance(edges, np.ndarray):
            arr = edges.astype(np.int64, copy=True)
        else:
            edge_list = list(edges)
            arr = np.array(
                [(int(u), int(v)) for u, v in edge_list], dtype=np.int64
            ) if edge_list else np.empty((0, 2), dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphError(f"edges must be (u, v) pairs, got shape {arr.shape}")

        out_of_range = (arr < 0) | (arr >= n)
        if out_of_range.any():
            row, col = np.argwhere(out_of_range)[0]
            raise NodeNotFoundError(int(arr[row, col]), n)

        loops = arr[:, 0] == arr[:, 1]
        if loops.any():
            if not dedupe:
                first = int(np.flatnonzero(loops)[0])
                raise GraphError(
                    f"self-loop ({arr[first, 0]}, {arr[first, 1]}) is not allowed"
                )
            arr = arr[~loops]

        lo = np.minimum(arr[:, 0], arr[:, 1])
        hi = np.maximum(arr[:, 0], arr[:, 1])
        keys = lo * n + hi
        unique_keys, first_seen = np.unique(keys, return_index=True)
        if unique_keys.size != keys.size:
            if not dedupe:
                order = np.argsort(keys, kind="stable")
                sorted_keys = keys[order]
                repeats = order[1:][sorted_keys[1:] == sorted_keys[:-1]]
                first = int(repeats.min())
                raise GraphError(f"duplicate edge ({arr[first, 0]}, {arr[first, 1]})")
            lo, hi = lo[first_seen], hi[first_seen]

        self._m = int(lo.size)
        sources = np.concatenate([lo, hi])
        targets = np.concatenate([hi, lo])
        degrees = np.bincount(sources, minlength=n).astype(np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        # Lexsort by (source, target): grouping by source yields the CSR
        # layout and the secondary key leaves every adjacency slice sorted,
        # so neighbor iteration is deterministic.
        order = np.lexsort((targets, sources))
        indices = targets[order]

        self._indptr = indptr
        self._indices = indices
        self._degrees = degrees
        self._backing = None

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return self._m

    @property
    def average_degree(self) -> float:
        """Average degree ``2m / n`` (the paper's ``d̄``)."""
        if self._n == 0:
            raise EmptyGraphError("average degree of an empty graph is undefined")
        return 2.0 * self._m / self._n

    @property
    def total_volume(self) -> int:
        """Sum of all degrees, ``2m``."""
        return 2 * self._m

    @property
    def backing(self) -> dict | None:
        """Storage metadata for graphs loaded from an ``.rcsr`` container.

        ``None`` for graphs built in memory.  For binary loads this is a
        dict with ``kind`` (``"mmap"`` or ``"binary"``), the source
        ``path`` and the byte ``offsets`` of each CSR section — enough for
        a worker process to re-map the same file instead of receiving a
        copy of the arrays.
        """
        return getattr(self, "_backing", None)

    @property
    def csr_nbytes(self) -> int:
        """Bytes held by the CSR arrays (indptr + indices + degrees).

        For mmap-backed graphs this is the mapped extent, not resident
        memory — pages materialize lazily as walks touch them.
        """
        return (
            self._indptr.nbytes + self._indices.nbytes + self._degrees.nbytes
        )

    @property
    def degrees(self) -> np.ndarray:
        """Read-only view of the degree array."""
        view = self._degrees.view()
        view.flags.writeable = False
        return view

    @property
    def indptr(self) -> np.ndarray:
        """Read-only view of the CSR row-pointer array (length ``n + 1``).

        Together with :attr:`indices` this exposes the raw CSR layout to
        batched execution backends (:mod:`repro.engine`), which gather
        neighbors for many walks at once via fancy-indexing.
        """
        view = self._indptr.view()
        view.flags.writeable = False
        return view

    @property
    def indices(self) -> np.ndarray:
        """Read-only view of the CSR adjacency array (length ``2m``)."""
        view = self._indices.view()
        view.flags.writeable = False
        return view

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self._n}, m={self._m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._n == other._n
            and self._m == other._m
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:
        return hash((self._n, self._m))

    # ------------------------------------------------------------------ #
    # Node / edge access
    # ------------------------------------------------------------------ #
    def nodes(self) -> range:
        """Iterate over all node ids."""
        return range(self._n)

    def has_node(self, node: int) -> bool:
        """Whether ``node`` is a valid node id."""
        return 0 <= node < self._n

    def _check_node(self, node: int) -> None:
        if not self.has_node(node):
            raise NodeNotFoundError(node, self._n)

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        self._check_node(node)
        return int(self._degrees[node])

    def neighbors(self, node: int) -> np.ndarray:
        """Neighbors of ``node`` as a read-only array slice (sorted)."""
        self._check_node(node)
        start, end = self._indptr[node], self._indptr[node + 1]
        view = self._indices[start:end].view()
        view.flags.writeable = False
        return view

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge ``(u, v)`` exists."""
        self._check_node(u)
        self._check_node(v)
        nbrs = self.neighbors(u)
        pos = np.searchsorted(nbrs, v)
        return bool(pos < len(nbrs) and nbrs[pos] == v)

    def edges(self) -> Iterator[Edge]:
        """Iterate over each undirected edge once, as ``(u, v)`` with u < v."""
        for u in range(self._n):
            for v in self.neighbors(u):
                if u < v:
                    yield (u, int(v))

    def random_neighbor(self, node: int, rng: np.random.Generator) -> int:
        """Uniformly sample a neighbor of ``node``.

        Raises :class:`GraphError` if ``node`` is isolated — the HKPR push
        and walk procedures never call this on isolated nodes, so hitting it
        indicates a logic error upstream.
        """
        self._check_node(node)
        start, end = self._indptr[node], self._indptr[node + 1]
        if start == end:
            raise GraphError(f"node {node} has no neighbors to sample")
        return int(self._indices[start + rng.integers(end - start)])

    # ------------------------------------------------------------------ #
    # Whole-graph views
    # ------------------------------------------------------------------ #
    def _node_array(self, nodes: Iterable[int]) -> np.ndarray:
        """Convert an iterable of node ids to a validated int64 array."""
        node_arr = np.fromiter((int(v) for v in nodes), dtype=np.int64)
        invalid = (node_arr < 0) | (node_arr >= self._n)
        if invalid.any():
            first = int(node_arr[np.flatnonzero(invalid)[0]])
            raise NodeNotFoundError(first, self._n)
        return node_arr

    def volume(self, nodes: Iterable[int]) -> int:
        """Sum of degrees over ``nodes`` (the paper's ``vol(S)``)."""
        node_arr = self._node_array(nodes)
        if node_arr.size == 0:
            return 0
        return int(self._degrees[node_arr].sum())

    def cut_size(self, nodes: Iterable[int]) -> int:
        """Number of edges with exactly one endpoint in ``nodes``."""
        node_arr = np.unique(self._node_array(nodes))
        if node_arr.size == 0:
            return 0
        member = np.zeros(self._n, dtype=bool)
        member[node_arr] = True
        starts = self._indptr[node_arr]
        counts = self._degrees[node_arr]
        total = int(counts.sum())
        if total == 0:
            return 0
        # Gather the concatenated adjacency slices of all member nodes with
        # one fancy-index (the standard CSR "ranges" trick), then count the
        # neighbors that fall outside the set.
        ends = np.cumsum(counts)
        positions = np.arange(total) + np.repeat(starts - (ends - counts), counts)
        neighbors = self._indices[positions]
        return int(np.count_nonzero(~member[neighbors]))

    def adjacency_matrix(self) -> "scipy.sparse.csr_matrix":  # noqa: F821
        """The sparse adjacency matrix ``A`` (symmetric, 0/1)."""
        from scipy.sparse import csr_matrix

        data = np.ones(len(self._indices), dtype=float)
        return csr_matrix(
            (data, self._indices.copy(), self._indptr.copy()),
            shape=(self._n, self._n),
        )

    def transition_matrix(self) -> "scipy.sparse.csr_matrix":  # noqa: F821
        """The random-walk transition matrix ``P = D^{-1} A``.

        Rows of isolated nodes are all-zero (a walk at an isolated node has
        nowhere to go); the HKPR definition treats such walks as staying put
        only implicitly, and the estimators never start from isolated nodes.
        """
        adjacency = self.adjacency_matrix()
        inv_deg = np.zeros(self._n, dtype=float)
        nonzero = self._degrees > 0
        inv_deg[nonzero] = 1.0 / self._degrees[nonzero]
        from scipy.sparse import diags

        return diags(inv_deg) @ adjacency

    def connected_component(self, start: int) -> set[int]:
        """Return the set of nodes reachable from ``start`` (BFS)."""
        self._check_node(start)
        seen = {start}
        frontier = [start]
        while frontier:
            next_frontier: list[int] = []
            for node in frontier:
                for nbr in self.neighbors(node):
                    nbr = int(nbr)
                    if nbr not in seen:
                        seen.add(nbr)
                        next_frontier.append(nbr)
            frontier = next_frontier
        return seen

    def is_connected(self) -> bool:
        """Whether the graph is connected (empty graphs count as connected)."""
        if self._n == 0:
            return True
        return len(self.connected_component(0)) == self._n

    def subgraph(self, nodes: Sequence[int]) -> tuple["Graph", dict[int, int]]:
        """Induced subgraph on ``nodes``.

        Returns the new graph (with nodes relabelled ``0..len(nodes)-1``) and
        the mapping from original node id to new node id.
        """
        node_list = [int(v) for v in dict.fromkeys(nodes)]
        for node in node_list:
            self._check_node(node)
        mapping = {node: i for i, node in enumerate(node_list)}
        sub_edges = [
            (mapping[u], mapping[v])
            for u in node_list
            for v in self.neighbors(u)
            if int(v) in mapping and u < int(v)
        ]
        return Graph(len(node_list), sub_edges), mapping

    @classmethod
    def from_edges(cls, edges: Iterable[Edge], *, dedupe: bool = False) -> "Graph":
        """Build a graph whose node count is inferred as ``max id + 1``."""
        edge_list = [(int(u), int(v)) for u, v in edges]
        if not edge_list:
            return cls(0, [])
        n = max(max(u, v) for u, v in edge_list) + 1
        return cls(n, edge_list, dedupe=dedupe)

    # ------------------------------------------------------------------ #
    # Binary (.rcsr) round trip
    # ------------------------------------------------------------------ #
    @classmethod
    def from_csr_arrays(
        cls,
        n: int,
        m: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        degrees: np.ndarray,
        *,
        backing: dict | None = None,
    ) -> "Graph":
        """Adopt pre-built CSR arrays without re-deriving them from edges.

        This is the trusted fast path used by the ``.rcsr`` reader: the
        arrays are taken as-is (possibly read-only memmap views — they are
        never mutated after construction), and only O(1) structural
        invariants are checked.  Full per-edge validation happened when the
        graph was originally built; the container's header CRC guards
        against bit rot in transit.
        """
        n, m = int(n), int(m)
        if n < 0 or m < 0:
            raise GraphError(f"invalid CSR dimensions n={n}, m={m}")
        if indptr.shape != (n + 1,):
            raise GraphError(
                f"indptr has shape {indptr.shape}, expected ({n + 1},)"
            )
        if degrees.shape != (n,):
            raise GraphError(f"degrees has shape {degrees.shape}, expected ({n},)")
        if indices.shape != (2 * m,):
            raise GraphError(
                f"indices has shape {indices.shape}, expected ({2 * m},)"
            )
        if int(indptr[0]) != 0 or int(indptr[-1]) != 2 * m:
            raise GraphError(
                f"indptr endpoints ({int(indptr[0])}, {int(indptr[-1])}) "
                f"do not bracket 2m={2 * m}"
            )
        graph = cls.__new__(cls)
        graph._n = n
        graph._m = m
        graph._indptr = indptr
        graph._indices = indices
        graph._degrees = degrees
        graph._backing = backing
        return graph

    def to_binary(self, path) -> "Path":  # noqa: F821 - Path via binfmt
        """Write this graph as a versioned ``.rcsr`` binary container."""
        from repro.graph.binfmt import write_graph_binary

        return write_graph_binary(self, path)

    @classmethod
    def from_binary(cls, path, *, mmap: bool = True) -> "Graph":
        """Load an ``.rcsr`` container, memory-mapped by default.

        With ``mmap=True`` (the default) the CSR arrays are read-only
        :func:`numpy.memmap` views: loading is O(header) regardless of
        graph size, and concurrent processes share the pages through the
        OS page cache.
        """
        from repro.graph.binfmt import read_graph_binary

        return read_graph_binary(path, mmap=mmap)
