"""Random number generator plumbing.

All randomized algorithms in this package accept either an integer seed, a
:class:`numpy.random.Generator`, or ``None``.  :func:`ensure_rng` normalizes
any of these into a ``Generator`` so that experiments are reproducible when
a seed is supplied and independent when it is not.
"""

from __future__ import annotations

import numpy as np

RandomState = int | np.random.Generator | None


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, or an existing
        ``Generator`` (returned unchanged).

    Examples
    --------
    >>> rng = ensure_rng(42)
    >>> rng2 = ensure_rng(rng)
    >>> rng is rng2
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from a single seed.

    Useful when an experiment runs several algorithms that should each see
    their own reproducible stream.
    """
    root = ensure_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
