"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class at their integration boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Raised when a graph is malformed or an operation is invalid for it."""


class NodeNotFoundError(GraphError):
    """Raised when a node id is outside the graph's node range."""

    def __init__(self, node: int, n: int) -> None:
        super().__init__(f"node {node} is not in the graph (valid range: 0..{n - 1})")
        self.node = node
        self.n = n


class EmptyGraphError(GraphError):
    """Raised when an operation requires a non-empty graph."""


class ParameterError(ReproError):
    """Raised when an algorithm parameter is out of its valid range."""


class DatasetError(ReproError):
    """Raised when a benchmark dataset cannot be built or is unknown."""


class ConvergenceError(ReproError):
    """Raised when an iterative method fails to converge within its budget."""
