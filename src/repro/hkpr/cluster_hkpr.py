"""ClusterHKPR (Chung & Simpson, IWOCA 2014) — truncated Monte-Carlo walks.

ClusterHKPR performs ``16 log(n) / eps^3`` random walks from the seed, each
with a Poisson(t)-distributed length *truncated* at a maximum hop ``K``, and
estimates each ``rho_s[v]`` by the fraction of walks ending at ``v``.  With
probability at least ``1 - eps`` it guarantees a relative error of ``eps``
on values above ``eps`` and an absolute error of ``eps`` below.

As §6 of the TEA paper points out, forcing ClusterHKPR to meet the
(d, eps_r, delta) guarantee requires ``eps <= min(eps_r * delta, p_f)``,
which makes the ``1/eps^3`` walk count explode; the benchmark harness sweeps
``eps`` directly (matching the paper's §7.4 protocol).
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.engine import Backend, chunk_sizes, get_backend
from repro.exceptions import ParameterError
from repro.graph.graph import Graph
from repro.hkpr.params import HKPRParams
from repro.hkpr.poisson import PoissonWeights
from repro.hkpr.result import HKPRResult
from repro.utils.counters import OperationCounters
from repro.utils.deadline import Deadline
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.sparsevec import SparseVector


def default_walk_count(n: int, eps: float) -> int:
    """The walk count ``16 log(n) / eps^3`` prescribed by Chung & Simpson."""
    if not 0.0 < eps < 1.0:
        raise ParameterError(f"eps must be in (0, 1), got {eps}")
    return max(1, int(math.ceil(16.0 * math.log(max(n, 2)) / eps**3)))


def default_max_hop(t: float, eps: float) -> int:
    """Truncation hop ``K`` — large enough that the ignored tail mass is < eps.

    Chung & Simpson truncate walks at ``K = O(log(1/eps) / log log(1/eps))``
    scaled by the heat constant; we use the direct criterion (smallest hop
    whose Poisson tail is below ``eps``), which matches the intent and is
    well defined for every ``t``.
    """
    weights = PoissonWeights(t)
    for k in range(weights.max_hop + 1):
        if weights.tail_mass_beyond(k) < eps:
            return max(1, k)
    return weights.max_hop


def cluster_hkpr(
    graph: Graph,
    seed_node: int,
    params: HKPRParams,
    *,
    eps: float | None = None,
    rng: RandomState = None,
    num_walks: int | None = None,
    max_hop: int | None = None,
    backend: str | Backend | None = None,
    deadline: Deadline | None = None,
) -> HKPRResult:
    """Estimate the HKPR vector of ``seed_node`` with ClusterHKPR.

    Parameters
    ----------
    eps:
        ClusterHKPR's single accuracy knob.  Defaults to
        ``min(eps_r * delta, p_f)``, the setting required for a
        (d, eps_r, delta) guarantee (see §6), but the benchmark harness
        normally passes the swept values {0.005 ... 0.1} directly.
    num_walks, max_hop:
        Overrides for the theory-driven walk count and truncation hop.
    backend:
        Execution backend for the walks (name, instance, or ``None`` for
        the process default; see :mod:`repro.engine`).
    """
    if not graph.has_node(seed_node):
        raise ParameterError(f"seed node {seed_node} is not in the graph")
    generator = ensure_rng(rng)
    engine = get_backend(backend)
    start = time.perf_counter()

    eps_value = eps if eps is not None else min(params.eps_r * params.delta, params.p_f)
    if not 0.0 < eps_value < 1.0:
        raise ParameterError(f"eps must be in (0, 1), got {eps_value}")
    walks = num_walks if num_walks is not None else default_walk_count(
        graph.num_nodes, eps_value
    )
    hop_cap = max_hop if max_hop is not None else default_max_hop(params.t, eps_value)

    weights = PoissonWeights(params.t)
    counters = OperationCounters()
    counters.extras["eps"] = eps_value
    counters.extras["max_hop"] = float(hop_cap)
    counters.extras["backend"] = engine.name
    if deadline is not None:
        deadline.bind(counters)
    estimates = SparseVector()
    increment = 1.0 / walks
    # Chunked so the 16 log(n) / eps^3 walk count stays bounded-memory.
    for batch in chunk_sizes(walks):
        if deadline is not None:
            deadline.checkpoint()
        end_nodes = engine.poisson_walk_batch(
            graph,
            np.full(batch, seed_node, dtype=np.int64),
            weights,
            generator,
            max_length=hop_cap,
            counters=counters,
        )
        estimates.add_many(end_nodes, increment)

    counters.reserve_entries = estimates.nnz()
    elapsed = time.perf_counter() - start
    return HKPRResult(
        estimates=estimates,
        seed=seed_node,
        method="cluster-hkpr",
        counters=counters,
        elapsed_seconds=elapsed,
    )
